#include <gtest/gtest.h>

#include "netlist/netlist.hpp"
#include "netlist/stats.hpp"
#include "util/check.hpp"

namespace gpf {
namespace {

netlist make_small() {
    netlist nl;
    nl.set_region(rect(0, 0, 10, 10));
    nl.set_row_height(1.0);
    cell a;
    a.name = "a";
    a.width = 2.0;
    nl.add_cell(a);
    cell b;
    b.name = "b";
    b.width = 3.0;
    nl.add_cell(b);
    cell p;
    p.name = "p0";
    p.kind = cell_kind::pad;
    p.position = point(0, 5);
    nl.add_cell(p);

    net n;
    n.name = "n0";
    n.pins = {{0, {}}, {1, {}}, {2, {}}};
    n.driver = 0;
    nl.add_net(n);
    return nl;
}

TEST(Netlist, AddCellReturnsSequentialIds) {
    netlist nl;
    cell c;
    c.name = "x";
    EXPECT_EQ(nl.add_cell(c), 0u);
    EXPECT_EQ(nl.add_cell(c), 1u);
    EXPECT_EQ(nl.num_cells(), 2u);
}

TEST(Netlist, PadIsForcedFixed) {
    netlist nl;
    cell p;
    p.name = "pad";
    p.kind = cell_kind::pad;
    p.fixed = false; // gets overridden
    const cell_id id = nl.add_cell(p);
    EXPECT_TRUE(nl.cell_at(id).fixed);
}

TEST(Netlist, RejectsNonPositiveDimensions) {
    netlist nl;
    cell c;
    c.name = "bad";
    c.width = 0.0;
    EXPECT_THROW(nl.add_cell(c), check_error);
}

TEST(Netlist, RejectsNetWithUnknownCell) {
    netlist nl;
    cell c;
    c.name = "a";
    nl.add_cell(c);
    net n;
    n.pins = {{5, {}}};
    EXPECT_THROW(nl.add_net(n), check_error);
}

TEST(Netlist, RejectsBadDriverIndex) {
    netlist nl;
    cell c;
    c.name = "a";
    nl.add_cell(c);
    net n;
    n.pins = {{0, {}}};
    n.driver = 3;
    EXPECT_THROW(nl.add_net(n), check_error);
}

TEST(Netlist, CountsAndAreas) {
    const netlist nl = make_small();
    EXPECT_EQ(nl.num_cells(), 3u);
    EXPECT_EQ(nl.num_nets(), 1u);
    EXPECT_EQ(nl.num_pins(), 3u);
    EXPECT_EQ(nl.num_movable(), 2u);
    EXPECT_EQ(nl.num_fixed(), 1u);
    EXPECT_DOUBLE_EQ(nl.movable_area(), 5.0);
    EXPECT_DOUBLE_EQ(nl.utilization(), 0.05);
    EXPECT_EQ(nl.num_rows(), 10u);
}

TEST(Netlist, AdjacencyIsBuiltAndInvalidated) {
    netlist nl = make_small();
    const auto& adj = nl.cell_nets();
    ASSERT_EQ(adj.size(), 3u);
    EXPECT_EQ(adj[0], std::vector<net_id>{0});
    EXPECT_EQ(adj[1], std::vector<net_id>{0});

    // Adding a net invalidates and rebuilds.
    net n;
    n.name = "n1";
    n.pins = {{0, {}}, {1, {}}};
    nl.add_net(n);
    const auto& adj2 = nl.cell_nets();
    EXPECT_EQ(adj2[0].size(), 2u);
}

TEST(Netlist, CenteredPlacementKeepsFixedCells) {
    const netlist nl = make_small();
    const placement pl = nl.centered_placement();
    EXPECT_EQ(pl[0], nl.region().center());
    EXPECT_EQ(pl[1], nl.region().center());
    EXPECT_EQ(pl[2], point(0, 5)); // pad stays
}

TEST(Netlist, CommitPlacementSkipsFixed) {
    netlist nl = make_small();
    placement pl(3, point(1, 1));
    nl.commit_placement(pl);
    EXPECT_EQ(nl.cell_at(0).position, point(1, 1));
    EXPECT_EQ(nl.cell_at(2).position, point(0, 5)); // pad unchanged
}

TEST(Netlist, ValidateAcceptsGoodNetlist) {
    const netlist nl = make_small();
    EXPECT_NO_THROW(nl.validate());
}

TEST(Netlist, ValidateRejectsDuplicatePins) {
    netlist nl = make_small();
    net n;
    n.name = "dup";
    n.pins = {{0, {}}, {0, {}}};
    nl.add_net(n);
    EXPECT_THROW(nl.validate(), check_error);
}

TEST(Netlist, ValidateRejectsNonPositiveWeight) {
    netlist nl = make_small();
    nl.net_at(0).weight = 0.0;
    EXPECT_THROW(nl.validate(), check_error);
}

TEST(Netlist, PinPositionIncludesOffset) {
    const netlist nl = make_small();
    placement pl = nl.initial_placement();
    pl[0] = point(3, 4);
    pin p;
    p.cell = 0;
    p.offset = point(0.5, -0.25);
    EXPECT_EQ(pin_position(nl, pl, p), point(3.5, 3.75));
}

TEST(NetlistStats, ComputesDegreeHistogram) {
    netlist nl = make_small();
    net n;
    n.name = "n1";
    n.pins = {{0, {}}, {1, {}}};
    nl.add_net(n);

    const netlist_stats s = compute_stats(nl);
    EXPECT_EQ(s.num_cells, 3u);
    EXPECT_EQ(s.num_pads, 1u);
    EXPECT_EQ(s.num_nets, 2u);
    EXPECT_EQ(s.num_pins, 5u);
    EXPECT_EQ(s.max_net_degree, 3u);
    EXPECT_EQ(s.degree_histogram.at(2), 1u);
    EXPECT_EQ(s.degree_histogram.at(3), 1u);
    EXPECT_DOUBLE_EQ(s.avg_net_degree, 2.5);
}

TEST(NetlistStats, StreamsWithoutCrashing) {
    const netlist nl = make_small();
    std::ostringstream os;
    os << compute_stats(nl);
    EXPECT_NE(os.str().find("cells=3"), std::string::npos);
}

} // namespace
} // namespace gpf
