#include "legal/abacus.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace gpf {

namespace {

struct seg_cell {
    cell_id id;
    double target; ///< desired left edge from the global placement
    double width;
    double weight;
};

struct seg_cluster {
    double e = 0.0; ///< total weight
    double q = 0.0; ///< Σ w_i (target_i − offset_i)
    double w = 0.0; ///< total width
    double x = 0.0; ///< left edge
    std::size_t first = 0; ///< first cell index in the segment order
};

struct segment_state {
    double xlo = 0.0;
    double xhi = 0.0;
    double used = 0.0;
    std::vector<seg_cell> cells;
    std::vector<seg_cluster> clusters;
};

/// Collapse the last cluster: clamp into the segment and merge backwards
/// while it overlaps its predecessor (the classic Abacus recursion).
void collapse(segment_state& seg) {
    for (;;) {
        seg_cluster& c = seg.clusters.back();
        c.x = std::clamp(c.q / c.e, seg.xlo, seg.xhi - c.w);
        if (seg.clusters.size() < 2) return;
        seg_cluster& prev = seg.clusters[seg.clusters.size() - 2];
        if (prev.x + prev.w <= c.x) return;
        // Merge c into prev.
        prev.q += c.q - c.e * prev.w;
        prev.e += c.e;
        prev.w += c.w;
        seg.clusters.pop_back();
    }
}

/// Append a cell (always at the right end — cells arrive in x order) and
/// return its final center x.
double append_cell(segment_state& seg, const seg_cell& c) {
    seg.cells.push_back(c);
    seg.used += c.width;
    seg_cluster nc;
    nc.e = c.weight;
    nc.q = c.weight * c.target;
    nc.w = c.width;
    nc.x = c.target;
    nc.first = seg.cells.size() - 1;
    const bool overlaps = !seg.clusters.empty() &&
                          seg.clusters.back().x + seg.clusters.back().w > c.target;
    seg.clusters.push_back(nc);
    if (overlaps) {
        // Immediately merge with the predecessor.
        seg_cluster last = seg.clusters.back();
        seg.clusters.pop_back();
        seg_cluster& prev = seg.clusters.back();
        prev.q += last.q - last.e * prev.w;
        prev.e += last.e;
        prev.w += last.w;
    }
    collapse(seg);

    // Final center of the appended cell: offset within its cluster is the
    // cluster width minus the cell width.
    const seg_cluster& cl = seg.clusters.back();
    return cl.x + cl.w - c.width + c.width / 2;
}

} // namespace

placement abacus_legalize(const netlist& nl, const placement& global,
                          const abacus_options& options) {
    GPF_CHECK(global.size() == nl.num_cells());
    const row_model rows(nl, global, /*treat_blocks_as_obstacles=*/true);

    std::vector<std::vector<segment_state>> state(rows.num_rows());
    for (std::size_t r = 0; r < rows.num_rows(); ++r) {
        for (const row_segment& seg : rows.row(r).segments) {
            segment_state s;
            s.xlo = seg.xlo;
            s.xhi = seg.xhi;
            state[r].push_back(std::move(s));
        }
    }

    std::vector<cell_id> order;
    for (cell_id i = 0; i < nl.num_cells(); ++i) {
        const cell& c = nl.cell_at(i);
        if (!c.fixed && c.kind == cell_kind::standard) order.push_back(i);
    }
    std::sort(order.begin(), order.end(), [&](cell_id a, cell_id b) {
        return global[a].x < global[b].x;
    });

    placement out = global;
    for (const cell_id id : order) {
        const cell& c = nl.cell_at(id);
        seg_cell sc;
        sc.id = id;
        sc.target = global[id].x - c.width / 2;
        sc.width = c.width;
        sc.weight = options.weight_by_area ? std::max(1e-6, c.area()) : 1.0;

        const std::size_t home = rows.nearest_row(global[id].y);
        double best_cost = std::numeric_limits<double>::infinity();
        std::size_t best_row = 0;
        std::size_t best_seg = 0;

        for (std::size_t dist = 0; dist < rows.num_rows(); ++dist) {
            if (dist > options.row_search_span &&
                best_cost < std::numeric_limits<double>::infinity()) {
                break;
            }
            for (const std::ptrdiff_t dir : {+1, -1}) {
                if (dist == 0 && dir < 0) continue;
                const std::ptrdiff_t rr = static_cast<std::ptrdiff_t>(home) +
                                          dir * static_cast<std::ptrdiff_t>(dist);
                if (rr < 0 || rr >= static_cast<std::ptrdiff_t>(rows.num_rows())) continue;
                const auto r = static_cast<std::size_t>(rr);
                const double dy = rows.row_center(r) - global[id].y;
                if (dy * dy >= best_cost) continue;
                for (std::size_t s = 0; s < state[r].size(); ++s) {
                    segment_state& seg = state[r][s];
                    if (seg.used + c.width > seg.xhi - seg.xlo) continue;
                    // Trial insertion on a cluster copy (cells untouched).
                    segment_state trial;
                    trial.xlo = seg.xlo;
                    trial.xhi = seg.xhi;
                    trial.used = seg.used;
                    trial.clusters = seg.clusters;
                    trial.cells.reserve(1);
                    const double cx = append_cell(trial, sc);
                    const double dx = cx - global[id].x;
                    const double cost = dx * dx + dy * dy;
                    if (cost < best_cost) {
                        best_cost = cost;
                        best_row = r;
                        best_seg = s;
                    }
                }
            }
        }

        GPF_CHECK_MSG(best_cost < std::numeric_limits<double>::infinity(),
                      "abacus legalizer ran out of row capacity for cell "
                          << nl.cell_at(id).name);
        append_cell(state[best_row][best_seg], sc);
        out[id].y = rows.row_center(best_row);
    }

    // Realize final x positions from the cluster structures.
    for (std::size_t r = 0; r < rows.num_rows(); ++r) {
        for (const segment_state& seg : state[r]) {
            for (const seg_cluster& cl : seg.clusters) {
                double x = cl.x;
                // Cells of this cluster: from cl.first up to the next
                // cluster's first (or end).
                std::size_t end = seg.cells.size();
                for (const seg_cluster& other : seg.clusters) {
                    if (other.first > cl.first) end = std::min(end, other.first);
                }
                for (std::size_t i = cl.first; i < end; ++i) {
                    const seg_cell& sc = seg.cells[i];
                    out[sc.id].x = x + sc.width / 2;
                    x += sc.width;
                }
            }
        }
    }
    return out;
}

} // namespace gpf
