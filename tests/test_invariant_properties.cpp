// Property-based invariant suite (DESIGN.md §12): drives every check in
// the property catalogue across a sweep of seeds. Each check is a pure
// function of its seed, so a failure here is replayed locally with
//
//   GPF_PROPERTY_SEEDS=<n> ./gpf_property_tests --gtest_filter='*<name>*'
//
// and the exact failing seed is printed in the assertion trace. The seed
// count defaults to 20 and scales up for the nightly deep sweep via the
// GPF_PROPERTY_SEEDS environment variable; GPF_PROPERTY_SEED_LOG names a
// file that accumulates "<check> seed=<n>" reproducer lines, which the
// nightly workflow uploads as an artifact.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "verify/properties.hpp"

namespace gpf {
namespace {

std::uint64_t seed_count() {
    if (const char* env = std::getenv("GPF_PROPERTY_SEEDS")) {
        const long n = std::atol(env);
        if (n > 0) return static_cast<std::uint64_t>(n);
    }
    return 20;
}

void log_failing_seed(const char* check, std::uint64_t seed) {
    const char* path = std::getenv("GPF_PROPERTY_SEED_LOG");
    if (path == nullptr || *path == '\0') return;
    std::ofstream out(path, std::ios::app);
    out << check << " seed=" << seed << "\n";
}

class PropertySuite : public ::testing::TestWithParam<property_check> {};

TEST_P(PropertySuite, HoldsAcrossSeeds) {
    const property_check& check = GetParam();
    const std::uint64_t seeds = seed_count();
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        SCOPED_TRACE(std::string(check.name) + " seed=" + std::to_string(seed));
        const verify_report report = check.fn(seed, property_options{});
        if (!report.ok()) log_failing_seed(check.name, seed);
        EXPECT_TRUE(report.ok()) << report.to_string();
    }
}

INSTANTIATE_TEST_SUITE_P(
    Catalogue, PropertySuite, ::testing::ValuesIn(property_catalogue()),
    [](const ::testing::TestParamInfo<property_check>& info) {
        return std::string(info.param.name);
    });

// The catalogue is the contract between this harness and the nightly
// sweep: it must expose at least the invariants of DESIGN.md §12 under
// stable names (reproducer logs reference them verbatim).
TEST(PropertyCatalogue, ExposesAllInvariants) {
    const auto& catalogue = property_catalogue();
    ASSERT_GE(catalogue.size(), 10u);
    std::vector<std::string> names;
    for (const auto& check : catalogue) names.emplace_back(check.name);
    for (const char* expected :
         {"force_field_conservative", "force_field_antisymmetry",
          "density_zero_integral", "fft_field_matches_direct",
          "r2c_transform_roundtrip", "r2c_convolution_matches_complex",
          "net_model_equivalence", "coarsening_conservation",
          "stop_best_monotonic", "checkpoint_resume_equivalence"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
            << "catalogue is missing " << expected;
    }
}

} // namespace
} // namespace gpf
