file(REMOVE_RECURSE
  "CMakeFiles/gpf_util.dir/util/logging.cpp.o"
  "CMakeFiles/gpf_util.dir/util/logging.cpp.o.d"
  "CMakeFiles/gpf_util.dir/util/prng.cpp.o"
  "CMakeFiles/gpf_util.dir/util/prng.cpp.o.d"
  "CMakeFiles/gpf_util.dir/util/stopwatch.cpp.o"
  "CMakeFiles/gpf_util.dir/util/stopwatch.cpp.o.d"
  "CMakeFiles/gpf_util.dir/util/thread_pool.cpp.o"
  "CMakeFiles/gpf_util.dir/util/thread_pool.cpp.o.d"
  "libgpf_util.a"
  "libgpf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
