#include "legal/tetris.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/check.hpp"

namespace gpf {

namespace {

struct open_segment {
    double fill;  ///< next free x (left edge)
    double xhi;   ///< right end of the segment
    double free() const { return xhi - fill; }
};

} // namespace

placement tetris_legalize(const netlist& nl, const placement& global,
                          const tetris_options& options) {
    GPF_CHECK(global.size() == nl.num_cells());
    const row_model rows(nl, global, /*treat_blocks_as_obstacles=*/true);

    std::vector<std::vector<open_segment>> open(rows.num_rows());
    for (std::size_t r = 0; r < rows.num_rows(); ++r) {
        for (const row_segment& seg : rows.row(r).segments) {
            open[r].push_back({seg.xlo, seg.xhi});
        }
    }

    // Movable standard cells, left to right by global x.
    std::vector<cell_id> order;
    for (cell_id i = 0; i < nl.num_cells(); ++i) {
        const cell& c = nl.cell_at(i);
        if (!c.fixed && c.kind == cell_kind::standard) order.push_back(i);
    }
    std::sort(order.begin(), order.end(), [&](cell_id a, cell_id b) {
        return global[a].x < global[b].x;
    });

    placement out = global;
    for (const cell_id id : order) {
        const cell& c = nl.cell_at(id);
        const double w = c.width;
        const std::size_t home = rows.nearest_row(global[id].y);

        double best_cost = std::numeric_limits<double>::infinity();
        std::size_t best_row = 0;
        std::size_t best_seg = 0;
        double best_x = 0.0;

        const std::size_t span =
            options.row_search_span == 0 ? rows.num_rows() : options.row_search_span;
        for (std::size_t dist = 0; dist < rows.num_rows(); ++dist) {
            if (dist > span && best_cost < std::numeric_limits<double>::infinity()) break;
            // Alternate above/below the home row.
            for (const std::ptrdiff_t dir : {+1, -1}) {
                if (dist == 0 && dir < 0) continue;
                const std::ptrdiff_t rr =
                    static_cast<std::ptrdiff_t>(home) + dir * static_cast<std::ptrdiff_t>(dist);
                if (rr < 0 || rr >= static_cast<std::ptrdiff_t>(rows.num_rows())) continue;
                const auto r = static_cast<std::size_t>(rr);
                const double dy =
                    std::abs(rows.row_center(r) - global[id].y) * options.vertical_penalty;
                if (dy >= best_cost) continue; // no segment in this row can win
                for (std::size_t s = 0; s < open[r].size(); ++s) {
                    const open_segment& seg = open[r][s];
                    if (seg.free() < w) continue;
                    // Left edge position closest to the desired center.
                    const double x =
                        std::clamp(global[id].x - w / 2, seg.fill, seg.xhi - w);
                    const double cost = std::abs(x + w / 2 - global[id].x) + dy;
                    if (cost < best_cost) {
                        best_cost = cost;
                        best_row = r;
                        best_seg = s;
                        best_x = x;
                    }
                }
            }
        }

        GPF_CHECK_MSG(best_cost < std::numeric_limits<double>::infinity(),
                      "tetris legalizer ran out of row capacity for cell "
                          << nl.cell_at(id).name);
        // Placing mid-segment must not discard the space to the left: keep
        // it as a separate open gap (cells arrive in ascending x, but their
        // clamped positions can still fall into earlier gaps).
        open_segment& chosen = open[best_row][best_seg];
        if (best_x > chosen.fill + 1e-12) {
            open[best_row].push_back({chosen.fill, best_x});
        }
        open[best_row][best_seg].fill = best_x + w;
        out[id] = point(best_x + w / 2, rows.row_center(best_row));
    }
    return out;
}

} // namespace gpf
