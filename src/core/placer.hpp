// The Kraftwerk global placer (section 4 of the paper).
//
// A `placement transformation` (section 4.1) takes an arbitrary input
// placement and produces a new one:
//   1. compute the density D of the current placement,
//   2. derive the force field of eq. (9) and scale it so the strongest
//      cell force equals a net of length K·(W+H),
//   3. accumulate the sampled per-cell forces into the constant force
//      vector e,
//   4. assemble the (linearized) quadratic system and solve
//      C p + d + e = 0 with preconditioned CG.
//
// The iterative algorithm (section 4.2) starts with all movable cells at
// the region center and zero forces, applies transformations until no
// empty square larger than four times the average cell area remains, and
// exposes the per-iteration history for the experiment harness.
//
// Extra density sources (congestion maps, heat maps — section 5) hook in
// through `density_hook`, which may deposit additional demand before the
// force field is computed.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "density/density_map.hpp"
#include "linalg/cg_solver.hpp"
#include "model/net_models.hpp"
#include "model/quadratic_system.hpp"
#include "netlist/netlist.hpp"

namespace gpf {

class force_field_calculator;

struct placer_options {
    /// The paper's K: 0.2 standard mode, 1.0 fast mode.
    double force_scale_k = 0.2;
    /// How the proportionality constant k of eq. (5) is chosen (see
    /// DESIGN.md §5). `local_gain` (default) converts the field into the
    /// displacement that shrinks the density error by the factor K per
    /// transformation: Δe_i = −K · C_ii · f(x_i) / max(1, coverage(x_i)).
    /// `paper_normalized` is the literal prescription — one global k per
    /// transformation such that the strongest force equals the pull of a
    /// net of length K(W+H); it converges far more slowly (constant-
    /// magnitude kicks) and is kept for the ablation benchmark.
    enum class force_scaling { local_gain, paper_normalized };
    force_scaling scaling = force_scaling::local_gain;
    /// Force bookkeeping across transformations.
    /// `hold_and_move` (default): every transformation recomputes a hold
    /// force e_hold = −(C p + d) that makes the current placement the
    /// equilibrium and adds the move force from the current field on top;
    /// the solve then distributes the spreading displacement so that the
    /// added quadratic wire length is minimal. This is the numerically
    /// robust formulation of the paper's fixed point (errors cannot
    /// accumulate in e).
    /// `accumulate`: the paper's literal bookkeeping e ← e + k·f. Kept for
    /// the ablation benchmark; converges only for small gains and drifts
    /// on the soft translational mode.
    enum class force_mode { hold_and_move, accumulate };
    force_mode mode = force_mode::hold_and_move;
    /// Per-transformation displacement cap as a fraction of (W+H); the
    /// trust region that keeps strong near-pile fields from throwing cells
    /// across the chip in one step (hold_and_move mode only).
    double max_step_fraction = 0.03;
    /// Wire relaxation: every `wire_relax_interval` transformations solve
    ///   (C + β·W̃) p = −d + β·W̃·p_cur ,  W̃ = diag(C), β = wire_relax_weight
    /// — the full quadratic wire objective with per-cell anchors at the
    /// current positions. This re-tightens wire length that spreading
    /// stretched, while the anchors approximately preserve the density
    /// distribution (the next density steps correct any damage). 0
    /// disables (ECO flows must, to stay local).
    std::size_t wire_relax_interval = 1;
    double wire_relax_weight = 0.05;
    std::size_t max_iterations = 200;
    std::size_t density_bins = 4096;     ///< target total bin count
    /// Multilevel coarse levels historically ratio-scaled density_bins by
    /// the coarse/fine movable-cell ratio to keep per-convolve FFT cost
    /// bounded. With the packed r2c spectral path a convolution at up to
    /// this many bins is under budget (256×256 runs in single-digit ms
    /// single-threaded), so coarse levels keep the full grid — better
    /// force resolution for bulk spreading — and only ratio-scale when
    /// density_bins exceeds this limit. 0 restores the old always-scale
    /// behavior.
    std::size_t coarse_full_bin_limit = std::size_t{1} << 16;
    double spread_factor = 4.0;          ///< stop: empty square area <= factor * avg cell area
    double empty_threshold = 0.05;       ///< bin demand below this counts as empty
    std::size_t min_iterations = 2;      ///< run at least this many transformations
    /// Secondary stop: end the run when the density overflow has not
    /// improved by `plateau_tolerance` (relative) for `plateau_window`
    /// consecutive transformations. 0 disables. Global placement then ends
    /// with small residual overlaps for the final placer to resolve, the
    /// same contract partitioning-based global placers (GORDIAN) have.
    std::size_t plateau_window = 20;
    double plateau_tolerance = 2e-3;
    bool clamp_to_region = true;         ///< project cell centers back into the core
    /// Iteration-persistent caches threaded through the transformation
    /// loop (DESIGN.md §7): the spectral force-field kernels are built
    /// once per grid, the density stamped for the stopping criterion seeds
    /// the next transformation's input density, and solver workspaces
    /// persist. Placements are bitwise identical with the cache on or off
    /// (tests/test_transform_cache.cpp); the switch exists for that
    /// equivalence test and as a safety valve.
    bool iteration_cache = true;
    /// Warm-start the hold-and-move displacement solves from the previous
    /// transformation's displacement instead of zero. Deterministic for
    /// any thread count, but the CG iterate trajectory differs from a
    /// cold start, so placements are *not* bitwise comparable to the
    /// default cold-start path; off by default.
    bool warm_start_cg = false;

    // --- Multilevel V-cycle (DESIGN.md §11) -------------------------------
    /// Number of coarsening levels. 0 (default) runs today's flat loop —
    /// bitwise identical to builds without the multilevel engine. With
    /// N > 0 the netlist is clustered up to N times (heavy-edge matching,
    /// src/cluster/), the full transformation loop runs on each coarse
    /// netlist with a proportionally coarser density grid and a looser
    /// stopping criterion, and cluster positions interpolate down to seed
    /// the next finer level; the finest level runs with the exact flat
    /// options. Deterministic for any GPF_THREADS value.
    std::size_t coarsen_levels = 0;
    /// Cluster area cap: a merge may not exceed this multiple of the
    /// level's average movable-cell area.
    double cluster_max_area_ratio = 4.0;
    /// Coarsening stops once a level has at most this many movable cells.
    std::size_t min_coarse_cells = 500;

    // --- Recovery engine (DESIGN.md §9) -----------------------------------
    // After every transformation a health check runs: finite coordinates,
    // CG progress, no runaway overflow. The checks are pure reads and the
    // ladder below engages only when one fails, so a healthy run is
    // bitwise identical — at every thread count — to a build without the
    // recovery layer.
    /// Rung 1: re-run an unhealthy transformation this many times with
    /// Jacobi preconditioning forced on and max_step_fraction halved.
    std::size_t max_retries = 1;
    /// Rung 2: after failed retries, restore the most recent healthy
    /// snapshot with force_scale_k halved; at most this many times per
    /// run. Rung 3 (stop, return the best-so-far placement) follows.
    std::size_t max_rollbacks = 2;
    /// Keep every `snapshot_interval`-th healthy placement, at most
    /// `snapshot_depth` of them, as rollback targets.
    std::size_t snapshot_interval = 1;
    std::size_t snapshot_depth = 3;
    /// Unhealthy when the overflow area exceeds the previous healthy
    /// iteration's by this factor (and is non-trivial in absolute terms).
    double overflow_spike_factor = 8.0;
    /// A non-converged CG solve counts as an incident only when its
    /// relative residual is at least this (no real progress) or is
    /// non-finite; merely-loose solves log a warning and continue.
    double cg_stall_residual = 0.5;
    /// Wall-clock budget for run()/run_from() in seconds; when exceeded
    /// the run ends through the best-so-far path. 0 = unlimited.
    double time_budget = 0.0;
    /// Per-transformation watchdog: a transformation that takes longer
    /// than this many seconds is treated as a recovery incident — a
    /// profiler-tagged warning is logged and the ladder engages, tightened
    /// retry first (DESIGN.md §14). 0 = off.
    double max_transform_seconds = 0.0;

    // --- Crash safety (DESIGN.md §14) -------------------------------------
    /// Durable checkpoint file. When non-empty, the flat transformation
    /// loop atomically persists its full resumable state (placement, force
    /// state, recovery-ladder state, history, best-so-far bookkeeping)
    /// every `checkpoint_interval` accepted transformations; the previous
    /// generation is rotated to `<path>.prev`. A run resumed with
    /// placer::resume() is bitwise identical to the uninterrupted run at
    /// every GPF_THREADS/GPF_SIMD setting. Checkpointing is pure
    /// observation — trajectories are identical with it on or off — and
    /// is not supported inside the multilevel V-cycle (silently disabled
    /// there; the flat loop is the resumable unit).
    std::string checkpoint_path;
    /// Accepted transformations between checkpoint writes (1 = every).
    std::size_t checkpoint_interval = 1;
    /// Liveness file for the supervisor (util/supervisor.hpp): a counter
    /// bumped before every transformation attempt. "" = no heartbeat.
    std::string heartbeat_path;
    /// Cooperative stop request (SIGINT/SIGTERM in gpf_place): when the
    /// pointed-to flag becomes true, the run flushes a final checkpoint,
    /// records a stop_best recovery event and returns the best-so-far
    /// placement (degraded, exit code 2) instead of dying mid-write.
    const std::atomic<bool>* stop_flag = nullptr;

    net_model_options net_model;
    cg_options cg;
};

/// One rung of the recovery ladder having engaged (DESIGN.md §9).
enum class recovery_action {
    retry_tightened, ///< transformation re-run, Jacobi + halved step cap
    rollback,        ///< restored a healthy snapshot, halved force_scale_k
    stop_best,       ///< run ended, best-so-far placement returned
    level_fallback,  ///< a coarse level failed; continuing at the finer level
};

/// Canonical name ("retry_tightened", "rollback", "stop_best").
const char* recovery_action_name(recovery_action action);

struct recovery_event {
    recovery_action action;
    std::size_t iteration = 0; ///< transformation index of the incident
    std::string reason;        ///< what the health check (or guard) saw
};

struct iteration_stats {
    std::size_t iteration = 0;
    double hpwl = 0.0;
    double overflow_area = 0.0;
    double largest_empty_square = 0.0;
    double max_force = 0.0;    ///< scaled maximum additional force this step
    double cg_residual = 0.0;  ///< worse of the x/y solves
    /// CG iterations spent in this transformation (x + y solves, wire
    /// relaxation included).
    std::size_t cg_iterations = 0;
    /// All CG solves of this transformation (x, y and wire relaxation)
    /// reached the residual tolerance; false is logged as a warning and —
    /// when the residual shows no real progress — treated as an incident
    /// by the recovery engine.
    bool cg_converged = true;
    /// Paper stopping criterion evaluated on the output placement: no
    /// empty square larger than spread_factor times the average cell area.
    bool spread = false;
    /// Recovery-ladder actions that concluded at this transformation
    /// (empty on a healthy iteration).
    std::vector<recovery_event> recovery;
};

/// One level of a multilevel run, coarsest first; level 0 is the full
/// netlist (the final refinement pass).
struct level_summary {
    std::size_t level = 0;       ///< 0 = finest/full netlist
    std::size_t movable_cells = 0;
    std::size_t nets = 0;
    std::size_t iterations = 0;  ///< transformations spent at this level
    double hpwl = 0.0;           ///< HPWL of the level's final placement
    double seconds = 0.0;        ///< wall clock of the level (incl. interpolation)
    bool degraded = false;       ///< the level's run needed the recovery ladder
    bool fell_back = false;      ///< level failed; its result was discarded
};

class placer {
public:
    explicit placer(const netlist& nl, placer_options options = {});
    ~placer();

    /// Full algorithm from the paper's initialization (all movable cells at
    /// the region center, e = 0). With options.coarsen_levels > 0 this is
    /// the multilevel V-cycle entry: coarse levels first, then the flat
    /// loop on the full netlist from the interpolated placement.
    placement run();

    /// Full algorithm from a given placement. reset_forces=false keeps the
    /// accumulated force vector, which is what ECO / timing continuation
    /// flows want.
    placement run_from(placement current, bool reset_forces = true);

    /// Continue a run from a checkpoint written by a placer constructed
    /// with identical options over the identical netlist (enforced by a
    /// state digest stored in the file). Falls back to
    /// `<checkpoint_path>.prev` when the newest generation is torn. The
    /// resumed run is bitwise identical to the uninterrupted run at every
    /// thread count. Throws checkpoint_error on a missing/torn/foreign
    /// checkpoint; flat loop only (options.coarsen_levels must be 0).
    placement resume(const std::string& checkpoint_path);

    /// Digest binding checkpoints to this placer's options + netlist
    /// identity (time-based guards and file paths excluded — those may
    /// legitimately differ between the original and the resumed process).
    std::uint64_t checkpoint_digest() const { return digest_; }

    /// One placement transformation.
    placement transform(const placement& current);

    /// Per-iteration statistics of the last run (or all transforms so far).
    const std::vector<iteration_stats>& history() const { return history_; }

    /// Invoked after every transformation; returning false stops the run
    /// early (used by the timing-requirement mode).
    using step_callback = std::function<bool(const iteration_stats&, const placement&)>;
    void set_step_callback(step_callback cb) { step_callback_ = std::move(cb); }

    /// Invoked between density stamping and finalize(); may add demand
    /// (congestion, heat, ECO deviation sources).
    using density_hook = std::function<void(density_map&, const placement&)>;
    void set_density_hook(density_hook hook) { density_hook_ = std::move(hook); }

    /// Invoked before each transformation's assemble step (timing-driven
    /// net weight adaption per section 5).
    using weight_hook = std::function<void(const placement&)>;
    void set_weight_hook(weight_hook hook) { weight_hook_ = std::move(hook); }

    /// Reset the accumulated force vector e to zero (also clears the
    /// calibrated force constant k).
    void reset_forces();

    quadratic_system& system() { return system_; }
    const quadratic_system& system() const { return system_; }
    const placer_options& options() const { return options_; }
    const netlist& circuit() const { return nl_; }

    /// True when the spread criterion held at the last transformation.
    bool converged() const { return converged_; }

    /// True when the last run needed the recovery ladder or a resource
    /// guard: the returned placement is valid but degraded (gpf_place
    /// maps this to exit code 2).
    bool degraded() const { return degraded_; }

    /// Every recovery action of the last run, in the order taken (the
    /// same events are attached to the iteration_stats they concluded at).
    const std::vector<recovery_event>& recovery_log() const { return recovery_log_; }

    /// Per-level record of the last multilevel run (coarsest first, the
    /// full-netlist pass last); empty after a flat run.
    const std::vector<level_summary>& level_log() const { return level_log_; }

    /// Average movable-cell area (the stopping criterion's yardstick).
    double average_cell_area() const;

private:
    /// One rollback target of recovery rung 2.
    struct snapshot_state {
        placement pl;
        double force_scale_k = 0.0;
        std::vector<double> force_x, force_y;
    };
    /// Everything the transformation loop carries between iterations that
    /// is not already a placer member — exactly the state a checkpoint
    /// must persist for a resumed run to be bitwise identical.
    struct run_state {
        placement current;
        std::size_t next_iteration = 0; ///< loop index of the next transformation
        placement best;
        double best_score = 0.0;
        bool have_best = false;
        double norm_overflow = 0.0;
        double norm_hpwl = 0.0;
        double prev_overflow = 0.0;
        std::size_t rollbacks_used = 0;
        double plateau_overflow = 0.0;
        std::size_t stalled = 0;
        std::vector<snapshot_state> snapshots;
        std::vector<recovery_event> pending;
    };

    /// The cluster V-cycle behind run() when coarsen_levels > 0.
    placement run_multilevel();
    /// The guarded transformation loop shared by run_from() and resume().
    placement run_loop(run_state& st);
    void record_recovery(run_state& st, recovery_action action,
                         const std::string& why);
    /// Serialize / restore the full resumable state (run_state + the
    /// iteration-carried placer members). The payload format is versioned
    /// by the checkpoint envelope (util/checkpoint.hpp).
    std::string serialize_state(const run_state& st) const;
    void restore_state(const std::string& payload, run_state& st);
    /// Atomic checkpoint write; an I/O failure degrades to a warning (a
    /// full disk must never kill a run that is making progress).
    void write_checkpoint(const run_state& st);
    void bump_heartbeat();
    std::uint64_t compute_digest() const;
    std::pair<std::size_t, std::size_t> density_dims() const;
    /// Returns the (x, y) CG results of the relaxation solves.
    std::pair<cg_result, cg_result> wire_relax(placement& pl);
    /// Health check of one completed transformation: "" when healthy,
    /// otherwise the reason. Pure reads — never touches placer state.
    std::string health_check(const iteration_stats& stats, const placement& pl,
                             double prev_overflow) const;
    /// Fill cell_rects_ with the non-pad cell rectangles under pl, in the
    /// same order compute_density_grid stamps them.
    void build_cell_rects(const placement& pl);

    const netlist& nl_;
    placer_options options_;
    quadratic_system system_;
    std::vector<double> force_x_; ///< accumulated e, x part, per variable
    std::vector<double> force_y_;
    double force_constant_ = 0.0; ///< calibrated k of eq. (5); 0 = not yet set
    std::vector<iteration_stats> history_;
    step_callback step_callback_;
    density_hook density_hook_;
    weight_hook weight_hook_;
    bool converged_ = false;
    bool degraded_ = false;
    std::vector<recovery_event> recovery_log_;
    std::vector<level_summary> level_log_;
    std::uint64_t digest_ = 0;          ///< checkpoint binding digest
    std::uint64_t heartbeat_counter_ = 0;

    // Iteration-persistent caches (placer_options::iteration_cache) and
    // solver workspaces. The caches never change results: the calculator
    // is bitwise equivalent to a fresh one, and next_density_ holds the
    // exact demand a fresh stamping of the same placement would produce
    // (guarded by a value comparison against last_output_).
    std::unique_ptr<force_field_calculator> field_calc_;
    std::optional<density_map> next_density_; ///< unfinalized, hook-free demand of last output
    placement last_output_;
    std::vector<rect> cell_rects_;            ///< stamping workspace
    std::vector<double> move_x_, move_y_;     ///< move-target workspaces
    std::vector<double> rhs_x_, rhs_y_;       ///< hold-and-move rhs workspaces
    std::vector<double> full_diag_x_, full_diag_y_;
    std::vector<double> delta_x_, delta_y_;   ///< displacement (warm-start state)
};

} // namespace gpf
