#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cg_solver.hpp"
#include "linalg/csr_matrix.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/prng.hpp"

namespace gpf {
namespace {

csr_matrix make_tridiagonal(std::size_t n, double diag, double off) {
    coo_builder b(n);
    for (std::size_t i = 0; i < n; ++i) {
        b.add_diagonal(i, diag);
        if (i + 1 < n) b.add_symmetric_pair(i, i + 1, off);
    }
    return b.build();
}

TEST(CsrMatrix, BuildsAndMerges) {
    coo_builder b(3);
    b.add(0, 0, 1.0);
    b.add(0, 0, 2.0); // duplicate → merged
    b.add(0, 2, -1.0);
    b.add(2, 0, -1.0);
    b.add(1, 1, 5.0);
    b.add(2, 2, 4.0);
    const csr_matrix m = b.build();
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.nonzeros(), 5u);
    EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(m.at(0, 2), -1.0);
    EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
    EXPECT_TRUE(m.is_symmetric());
}

TEST(CsrMatrix, Multiply) {
    const csr_matrix m = make_tridiagonal(4, 2.0, -1.0);
    std::vector<double> y;
    m.multiply({1.0, 1.0, 1.0, 1.0}, y);
    ASSERT_EQ(y.size(), 4u);
    EXPECT_DOUBLE_EQ(y[0], 1.0);
    EXPECT_DOUBLE_EQ(y[1], 0.0);
    EXPECT_DOUBLE_EQ(y[2], 0.0);
    EXPECT_DOUBLE_EQ(y[3], 1.0);
}

TEST(CsrMatrix, Diagonal) {
    const csr_matrix m = make_tridiagonal(3, 5.0, -1.0);
    const std::vector<double> d = m.diagonal();
    EXPECT_EQ(d, (std::vector<double>{5.0, 5.0, 5.0}));
}

TEST(CsrMatrix, AsymmetryDetected) {
    coo_builder b(2);
    b.add_diagonal(0, 1.0);
    b.add_diagonal(1, 1.0);
    b.add(0, 1, -0.5); // missing transpose entry
    const csr_matrix m = b.build();
    EXPECT_FALSE(m.is_symmetric());
}

TEST(CsrMatrix, OutOfRangeAddThrows) {
    coo_builder b(2);
    EXPECT_THROW(b.add(2, 0, 1.0), check_error);
}

TEST(CgSolver, SolvesIdentity) {
    coo_builder b(3);
    for (std::size_t i = 0; i < 3; ++i) b.add_diagonal(i, 1.0);
    const csr_matrix m = b.build();
    std::vector<double> x;
    const cg_result res = cg_solve(m, {1.0, 2.0, 3.0}, x);
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(x[0], 1.0, 1e-8);
    EXPECT_NEAR(x[1], 2.0, 1e-8);
    EXPECT_NEAR(x[2], 3.0, 1e-8);
}

TEST(CgSolver, ZeroRhsGivesZero) {
    const csr_matrix m = make_tridiagonal(5, 2.0, -1.0);
    std::vector<double> x(5, 3.0); // non-zero warm start
    const cg_result res = cg_solve(m, std::vector<double>(5, 0.0), x);
    EXPECT_TRUE(res.converged);
    for (const double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

class CgPreconditioners : public ::testing::TestWithParam<preconditioner_kind> {};

TEST_P(CgPreconditioners, SolvesRandomSpdSystem) {
    // Laplacian + diagonal dominance → SPD.
    constexpr std::size_t n = 60;
    prng rng(17);
    coo_builder b(n);
    for (std::size_t i = 0; i < n; ++i) b.add_diagonal(i, 4.0 + rng.next_double());
    for (std::size_t i = 0; i + 1 < n; ++i) b.add_symmetric_pair(i, i + 1, -1.0);
    for (std::size_t i = 0; i + 7 < n; ++i) b.add_symmetric_pair(i, i + 7, -0.5);
    const csr_matrix m = b.build();

    std::vector<double> x_true(n);
    for (double& v : x_true) v = rng.next_range(-2.0, 2.0);
    std::vector<double> rhs;
    m.multiply(x_true, rhs);

    cg_options opt;
    opt.preconditioner = GetParam();
    opt.tolerance = 1e-10;
    std::vector<double> x;
    const cg_result res = cg_solve(m, rhs, x, opt);
    EXPECT_TRUE(res.converged);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-6);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, CgPreconditioners,
                         ::testing::Values(preconditioner_kind::none,
                                           preconditioner_kind::jacobi,
                                           preconditioner_kind::ssor));

TEST(CgSolver, WarmStartConvergesFaster) {
    const csr_matrix m = make_tridiagonal(200, 2.1, -1.0);
    std::vector<double> rhs(200, 1.0);

    std::vector<double> cold;
    const cg_result cold_res = cg_solve(m, rhs, cold);
    ASSERT_TRUE(cold_res.converged);

    std::vector<double> warm = cold; // exact solution as start
    const cg_result warm_res = cg_solve(m, rhs, warm);
    EXPECT_TRUE(warm_res.converged);
    EXPECT_LT(warm_res.iterations, cold_res.iterations);
    EXPECT_EQ(warm_res.iterations, 0u);
}

TEST(CgSolver, OperatorVariantMatchesMatrixVariant) {
    const csr_matrix m = make_tridiagonal(50, 3.0, -1.0);
    std::vector<double> rhs(50);
    prng rng(23);
    for (double& v : rhs) v = rng.next_range(-1.0, 1.0);

    std::vector<double> x_matrix;
    cg_solve(m, rhs, x_matrix);

    const linear_operator apply = [&](const std::vector<double>& x,
                                      std::vector<double>& y) { m.multiply(x, y); };
    std::vector<double> x_op;
    const cg_result res = cg_solve_operator(apply, m.diagonal(), rhs, x_op);
    ASSERT_TRUE(res.converged);
    for (std::size_t i = 0; i < 50; ++i) EXPECT_NEAR(x_op[i], x_matrix[i], 1e-6);
}

TEST(CgSolver, OperatorWithDiagonalShift) {
    // (A + wI) x = b solved via the operator interface — the anchored
    // system used by the GORDIAN baseline.
    const csr_matrix m = make_tridiagonal(30, 2.0, -1.0);
    const double w = 0.7;
    std::vector<double> diag = m.diagonal();
    for (double& d : diag) d += w;
    const linear_operator apply = [&](const std::vector<double>& x,
                                      std::vector<double>& y) {
        m.multiply(x, y);
        for (std::size_t i = 0; i < x.size(); ++i) y[i] += w * x[i];
    };
    std::vector<double> rhs(30, 1.0);
    std::vector<double> x;
    const cg_result res = cg_solve_operator(apply, diag, rhs, x);
    ASSERT_TRUE(res.converged);
    // Verify residual directly.
    std::vector<double> ax;
    apply(x, ax);
    for (std::size_t i = 0; i < 30; ++i) EXPECT_NEAR(ax[i], rhs[i], 1e-6);
}

TEST(CgSolver, OperatorSsorFallbackWarnsOnceAndMatchesJacobi) {
    // Requesting SSOR behind the opaque-operator interface downgrades to
    // Jacobi with a warning. Regression-pins the contract: the warning
    // fires exactly once per process (not per solve, not zero times), and
    // the downgrade really is Jacobi — the solution is bitwise identical
    // to an explicit jacobi-preconditioned solve.
    const csr_matrix m = make_tridiagonal(60, 3.0, -1.0);
    std::vector<double> rhs(60);
    prng rng(77);
    for (double& v : rhs) v = rng.next_range(-1.0, 1.0);
    const linear_operator apply = [&](const std::vector<double>& x,
                                      std::vector<double>& y) { m.multiply(x, y); };
    const std::vector<double> diag = m.diagonal();

    reset_cg_operator_ssor_warning();
    std::vector<std::string> warnings;
    set_log_sink([&](log_level level, const std::string& message) {
        if (level == log_level::warning) warnings.push_back(message);
    });

    cg_options ssor;
    ssor.preconditioner = preconditioner_kind::ssor;
    std::vector<double> x_first, x_second;
    ASSERT_TRUE(cg_solve_operator(apply, diag, rhs, x_first, ssor).converged);
    ASSERT_TRUE(cg_solve_operator(apply, diag, rhs, x_second, ssor).converged);
    set_log_sink(nullptr);

    ASSERT_EQ(warnings.size(), 1u) << "warning must fire exactly once";
    EXPECT_NE(warnings[0].find("ssor"), std::string::npos) << warnings[0];
    EXPECT_NE(warnings[0].find("jacobi"), std::string::npos) << warnings[0];

    cg_options jacobi;
    jacobi.preconditioner = preconditioner_kind::jacobi;
    std::vector<double> x_jacobi;
    ASSERT_TRUE(cg_solve_operator(apply, diag, rhs, x_jacobi, jacobi).converged);
    ASSERT_EQ(x_first.size(), x_jacobi.size());
    for (std::size_t i = 0; i < x_jacobi.size(); ++i) {
        EXPECT_EQ(x_first[i], x_jacobi[i]) << i; // bitwise: same math path
        EXPECT_EQ(x_second[i], x_jacobi[i]) << i;
    }

    // The reset hook re-arms it — a second process-lifetime can be simulated.
    reset_cg_operator_ssor_warning();
    warnings.clear();
    set_log_sink([&](log_level level, const std::string& message) {
        if (level == log_level::warning) warnings.push_back(message);
    });
    std::vector<double> x_again;
    ASSERT_TRUE(cg_solve_operator(apply, diag, rhs, x_again, ssor).converged);
    set_log_sink(nullptr);
    EXPECT_EQ(warnings.size(), 1u);
}

TEST(VectorHelpers, DotNormAxpy) {
    const std::vector<double> a{1.0, 2.0, 3.0};
    const std::vector<double> b{4.0, 5.0, 6.0};
    EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
    EXPECT_DOUBLE_EQ(norm2(a), std::sqrt(14.0));
    std::vector<double> y = b;
    axpy(2.0, a, y);
    EXPECT_EQ(y, (std::vector<double>{6.0, 9.0, 12.0}));
}

} // namespace
} // namespace gpf
