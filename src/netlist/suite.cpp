#include "netlist/suite.hpp"

#include <algorithm>
#include <cmath>

#include "netlist/generator.hpp"
#include "util/check.hpp"

namespace gpf {

const std::vector<suite_circuit>& mcnc_suite() {
    static const std::vector<suite_circuit> suite = {
        // name        cells   nets   rows pads
        {"fract",        125,   147,    6,  24},
        {"primary1",     752,   904,   16,  81},
        {"struct",      1888,  1920,   21,  64},
        {"primary2",    2907,  3029,   28, 107},
        {"biomed",      6417,  5742,   46,  97},
        {"industry2",  12142, 13419,   72, 495},
        {"industry3",  15059, 21940,   54, 374},
        {"avq.small",  21854, 22124,   80,  64},
        {"avq.large",  25114, 25384,   86,  64},
    };
    return suite;
}

const suite_circuit& suite_circuit_by_name(const std::string& name) {
    for (const suite_circuit& c : mcnc_suite()) {
        if (c.name == name) return c;
    }
    GPF_CHECK_MSG(false, "unknown suite circuit '" << name << "'");
    // unreachable
    return mcnc_suite().front();
}

netlist make_suite_circuit(const suite_circuit& descriptor, double scale,
                           std::uint64_t seed) {
    GPF_CHECK(scale > 0.0 && scale <= 1.0);
    auto scaled = [](std::size_t v, double s, std::size_t floor_value) {
        const auto r =
            static_cast<std::size_t>(std::llround(static_cast<double>(v) * s));
        return std::max(floor_value, r);
    };

    generator_options opt;
    opt.name = descriptor.name;
    opt.num_cells = scaled(descriptor.num_cells, scale, 16);
    opt.num_nets = scaled(descriptor.num_nets, scale, 16);
    // Cell count scales with area; rows and pads follow the linear
    // dimension (√scale) so the chip aspect ratio and perimeter/area ratio
    // stay realistic at any scale.
    opt.num_rows = scaled(descriptor.num_rows, std::sqrt(scale), 4);
    opt.num_pads = scaled(descriptor.num_pads, std::sqrt(scale), 8);
    // Mix the circuit name into the seed so each circuit gets an
    // independent (but reproducible) structure.
    std::uint64_t h = 1469598103934665603ULL;
    for (const char ch : descriptor.name) {
        h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(ch));
        h *= 1099511628211ULL;
    }
    opt.seed = seed ^ h;
    return generate_circuit(opt);
}

const std::vector<std::string>& timing_suite_names() {
    static const std::vector<std::string> names = {"fract", "struct", "biomed",
                                                   "avq.small", "avq.large"};
    return names;
}

} // namespace gpf
