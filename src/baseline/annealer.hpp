// TimberWolf-style simulated-annealing baseline (Sun/Sechen, TCAD 1995 —
// reference [2] of the paper): row-based standard-cell placement with
// single-cell displacements and pairwise swaps, a range window that shrinks
// with temperature, geometric cooling, and a row over-capacity penalty in
// the cost function. Overlaps inside rows are allowed during annealing and
// resolved by the shared legalization pipeline afterwards — the same
// division of labor the original uses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace gpf {

struct annealer_options {
    double initial_acceptance = 0.9; ///< calibrates T0 from sampled uphill moves
    double cooling_factor = 0.92;
    double final_temperature_ratio = 1e-4; ///< stop when T < ratio · T0
    std::size_t moves_per_cell = 8;        ///< moves attempted per cell per temperature
    double swap_fraction = 0.5;            ///< fraction of moves that are swaps
    double row_penalty = 2.0;              ///< weight of row over-capacity, per unit width
    std::uint64_t seed = 42;
    std::size_t max_temperatures = 200;
};

struct annealer_stats {
    std::size_t temperatures = 0;
    std::size_t accepted = 0;
    std::size_t attempted = 0;
    double initial_cost = 0.0;
    double final_cost = 0.0;
    double initial_temperature = 0.0;
};

/// Anneal the movable standard cells starting from `start` (blocks and
/// fixed cells stay put). Returns an overlapping row-based placement;
/// legalize afterwards.
placement anneal_place(const netlist& nl, const placement& start,
                       const annealer_options& options = {},
                       annealer_stats* stats = nullptr);

} // namespace gpf
