#include <gtest/gtest.h>

#include <cmath>

#include "density/density_map.hpp"
#include "density/empty_square.hpp"
#include "netlist/generator.hpp"
#include "util/check.hpp"

namespace gpf {
namespace {

TEST(DensityMap, BinGeometry) {
    const density_map d(rect(0, 0, 8, 4), 8, 4);
    EXPECT_DOUBLE_EQ(d.bin_width(), 1.0);
    EXPECT_DOUBLE_EQ(d.bin_height(), 1.0);
    EXPECT_EQ(d.bin_center(0, 0), point(0.5, 0.5));
    EXPECT_EQ(d.bin_center(7, 3), point(7.5, 3.5));
}

TEST(DensityMap, ExactRectangleStamping) {
    density_map d(rect(0, 0, 4, 4), 4, 4);
    d.add_rect(rect(0.5, 0.5, 1.5, 1.5)); // unit square across 4 bins
    d.finalize();
    EXPECT_DOUBLE_EQ(d.demand_at(0, 0), 0.25);
    EXPECT_DOUBLE_EQ(d.demand_at(1, 0), 0.25);
    EXPECT_DOUBLE_EQ(d.demand_at(0, 1), 0.25);
    EXPECT_DOUBLE_EQ(d.demand_at(1, 1), 0.25);
    EXPECT_DOUBLE_EQ(d.demand_at(2, 2), 0.0);
}

TEST(DensityMap, StampedAreaIsConserved) {
    density_map d(rect(0, 0, 10, 10), 16, 16);
    d.add_rect(rect(1.3, 2.7, 4.9, 6.1));
    double total = 0.0;
    for (std::size_t ix = 0; ix < d.nx(); ++ix)
        for (std::size_t iy = 0; iy < d.ny(); ++iy)
            total += d.demand_at(ix, iy) * d.bin_area();
    EXPECT_NEAR(total, 3.6 * 3.4, 1e-9);
}

TEST(DensityMap, ClipsOutsideRegion) {
    density_map d(rect(0, 0, 4, 4), 4, 4);
    d.add_rect(rect(-2, -2, 1, 1)); // only 1x1 inside
    double total = 0.0;
    for (std::size_t ix = 0; ix < 4; ++ix)
        for (std::size_t iy = 0; iy < 4; ++iy) total += d.demand_at(ix, iy);
    EXPECT_NEAR(total * d.bin_area(), 1.0, 1e-9);
}

TEST(DensityMap, FinalizeMakesZeroMeanDensity) {
    density_map d(rect(0, 0, 4, 4), 4, 4);
    d.add_rect(rect(0, 0, 2, 2));
    d.finalize();
    double sum = 0.0;
    for (std::size_t ix = 0; ix < 4; ++ix)
        for (std::size_t iy = 0; iy < 4; ++iy) sum += d.density_at(ix, iy);
    EXPECT_NEAR(sum, 0.0, 1e-12);
    EXPECT_GT(d.density_at(0, 0), 0.0);  // covered bin: positive
    EXPECT_LT(d.density_at(3, 3), 0.0);  // empty bin: negative
}

// Regression: a fully covered bin must receive EXACTLY the stamp weight.
// The old per-bin path computed weight * ox * oy / bin_area, and for
// non-dyadic bin sizes (here 3/5) the round trip area * (1/area) lands at
// 1 ± ulp instead of 1 — ulp dirt that finalize() then spreads into every
// density value.
TEST(DensityMap, FullyCoveredBinsGetExactWeight) {
    density_map d(rect(0, 0, 3, 3), 5, 5);
    d.add_rect(rect(0, 0, 3, 3)); // covers every bin of the region exactly
    for (std::size_t ix = 0; ix < 5; ++ix) {
        for (std::size_t iy = 0; iy < 5; ++iy) {
            EXPECT_EQ(d.demand_at(ix, iy), 1.0) << ix << "," << iy;
        }
    }
}

// Regression: a rect whose corners sit bitwise on interior bin edges (the
// computed edges origin + k * bin_w) covers its bin exactly — weight 1 in
// the covered bin, exactly 0 everywhere else, not ±ulp slivers.
TEST(DensityMap, RectOnBinEdgesIsExact) {
    density_map d(rect(0, 0, 3, 3), 5, 5);
    const double e1 = 0.0 + 1.0 * d.bin_width();
    const double e2 = 0.0 + 2.0 * d.bin_width();
    d.add_rect(rect(e1, e1, e2, e2)); // exactly bin (1, 1)
    for (std::size_t ix = 0; ix < 5; ++ix) {
        for (std::size_t iy = 0; iy < 5; ++iy) {
            const double expected = (ix == 1 && iy == 1) ? 1.0 : 0.0;
            EXPECT_EQ(d.demand_at(ix, iy), expected) << ix << "," << iy;
        }
    }
}

// Degenerate rects (zero width and/or height) carry no area: nothing may
// be deposited, including on bin boundaries.
TEST(DensityMap, DegenerateRectsDepositNothing) {
    density_map d(rect(0, 0, 4, 4), 4, 4);
    d.add_rect(rect(1.0, 0.5, 1.0, 3.5));  // zero width on a bin edge
    d.add_rect(rect(0.5, 2.0, 3.5, 2.0));  // zero height on a bin edge
    d.add_rect(rect(2.5, 2.5, 2.5, 2.5));  // zero area point
    d.add_rect(rect(4.0, 0.0, 4.0, 4.0));  // zero width on the region edge
    for (std::size_t ix = 0; ix < 4; ++ix) {
        for (std::size_t iy = 0; iy < 4; ++iy) {
            EXPECT_EQ(d.demand_at(ix, iy), 0.0) << ix << "," << iy;
        }
    }
}

// A rect flush against the region boundary fills its edge bins exactly
// (the last computed edge may differ from the region bound by rounding;
// coverage fractions must still come out exactly 1).
TEST(DensityMap, RegionEdgeBinsFillExactly) {
    density_map d(rect(0.1, 0.2, 6.1, 9.2), 7, 9); // non-dyadic bins
    d.add_rect(rect(0.1, 0.2, 6.1, 9.2));
    for (std::size_t ix = 0; ix < 7; ++ix) {
        for (std::size_t iy = 0; iy < 9; ++iy) {
            EXPECT_EQ(d.demand_at(ix, iy), 1.0) << ix << "," << iy;
        }
    }
}

TEST(DensityMap, WeightScalesDeposit) {
    density_map d(rect(0, 0, 2, 2), 2, 2);
    d.add_rect(rect(0, 0, 1, 1), 3.0);
    EXPECT_DOUBLE_EQ(d.demand_at(0, 0), 3.0);
}

TEST(DensityMap, AddPointDepositsIntoOneBin) {
    density_map d(rect(0, 0, 4, 4), 4, 4);
    d.add_point(point(2.5, 3.5), 2.0);
    EXPECT_DOUBLE_EQ(d.demand_at(2, 3), 2.0);
    d.add_point(point(100, 100), 5.0); // outside → ignored
    double total = 0.0;
    for (std::size_t ix = 0; ix < 4; ++ix)
        for (std::size_t iy = 0; iy < 4; ++iy) total += d.demand_at(ix, iy);
    EXPECT_DOUBLE_EQ(total, 2.0);
}

TEST(DensityMap, AddFieldRequiresMatchingSize) {
    density_map d(rect(0, 0, 2, 2), 2, 2);
    EXPECT_THROW(d.add_field(std::vector<double>(3, 1.0)), check_error);
    d.add_field(std::vector<double>{1, 2, 3, 4}, 0.5);
    EXPECT_DOUBLE_EQ(d.demand_at(0, 0), 0.5);
    EXPECT_DOUBLE_EQ(d.demand_at(1, 1), 2.0);
}

TEST(DensityMap, DemandNearClampsToGrid) {
    density_map d(rect(0, 0, 2, 2), 2, 2);
    d.add_rect(rect(0, 0, 1, 1));
    EXPECT_DOUBLE_EQ(d.demand_near(point(0.5, 0.5)), 1.0);
    EXPECT_DOUBLE_EQ(d.demand_near(point(-5, -5)), 1.0);  // clamped to (0,0)
    EXPECT_DOUBLE_EQ(d.demand_near(point(5, 5)), 0.0);
}

TEST(DensityMap, OverflowAndMaxDensity) {
    density_map d(rect(0, 0, 2, 2), 2, 2);
    d.add_rect(rect(0, 0, 1, 1), 4.0); // coverage 4 in one bin
    d.finalize();
    EXPECT_DOUBLE_EQ(d.supply_level(), 1.0);
    EXPECT_DOUBLE_EQ(d.max_density(), 3.0);
    EXPECT_DOUBLE_EQ(d.overflow_area(), 3.0 * d.bin_area());
}

TEST(DensityMap, ComputeDensityFromNetlist) {
    generator_options opt;
    opt.num_cells = 200;
    opt.num_nets = 220;
    opt.num_rows = 8;
    opt.num_pads = 16;
    const netlist nl = generate_circuit(opt);
    const density_map d = compute_density(nl, nl.centered_placement(), 1024);
    // All movable area must be stamped (cells clamped inside the region).
    double total = 0.0;
    for (std::size_t ix = 0; ix < d.nx(); ++ix)
        for (std::size_t iy = 0; iy < d.ny(); ++iy)
            total += d.demand_at(ix, iy) * d.bin_area();
    EXPECT_NEAR(total, nl.movable_area(), nl.movable_area() * 0.02);
    EXPECT_TRUE(d.finalized());
}

TEST(EmptySquare, FullyEmptyGrid) {
    density_map d(rect(0, 0, 8, 8), 8, 8);
    d.finalize();
    EXPECT_DOUBLE_EQ(largest_empty_square_side(d), 8.0);
}

TEST(EmptySquare, FullGridHasNone) {
    density_map d(rect(0, 0, 4, 4), 4, 4);
    d.add_rect(rect(0, 0, 4, 4));
    d.finalize();
    EXPECT_DOUBLE_EQ(largest_empty_square_side(d), 0.0);
}

TEST(EmptySquare, FindsHole) {
    density_map d(rect(0, 0, 8, 8), 8, 8);
    d.add_rect(rect(0, 0, 8, 8)); // fill all
    // carve a 3x3 hole by subtracting demand
    std::vector<double> carve(64, 0.0);
    for (std::size_t ix = 2; ix < 5; ++ix)
        for (std::size_t iy = 3; iy < 6; ++iy) carve[ix * 8 + iy] = -1.0;
    d.add_field(carve);
    d.finalize();
    EXPECT_DOUBLE_EQ(largest_empty_square_side(d), 3.0);
}

TEST(EmptySquare, SpreadCriterionMatchesPaperRule) {
    density_map d(rect(0, 0, 8, 8), 8, 8);
    d.add_rect(rect(0, 0, 8, 8));
    std::vector<double> carve(64, 0.0);
    for (std::size_t ix = 0; ix < 2; ++ix)
        for (std::size_t iy = 0; iy < 2; ++iy) carve[ix * 8 + iy] = -1.0;
    d.add_field(carve);
    d.finalize();
    // Largest empty square: 2x2 = 4 area. Paper: spread iff area <= 4*avg.
    EXPECT_TRUE(placement_is_spread(d, /*average_cell_area=*/1.0));
    EXPECT_FALSE(placement_is_spread(d, /*average_cell_area=*/0.9));
}

TEST(EmptySquare, ThresholdControlsEmptiness) {
    density_map d(rect(0, 0, 4, 4), 4, 4);
    d.add_rect(rect(0, 0, 4, 4), 0.04); // light uniform coverage
    d.finalize();
    EXPECT_DOUBLE_EQ(largest_empty_square_side(d, 0.05), 4.0);
    EXPECT_DOUBLE_EQ(largest_empty_square_side(d, 0.03), 0.0);
}

} // namespace
} // namespace gpf
