#include <gtest/gtest.h>

#include <cmath>

#include "model/quadratic_system.hpp"
#include "netlist/generator.hpp"
#include "util/check.hpp"

namespace gpf {
namespace {

/// Two movable cells between two fixed pads on a line:
/// pad(0,5) — a — b — pad(10,5).
netlist chain_netlist() {
    netlist nl;
    nl.set_region(rect(0, 0, 10, 10));
    cell a;
    a.name = "a";
    nl.add_cell(a);
    cell b;
    b.name = "b";
    nl.add_cell(b);
    cell p0;
    p0.name = "p0";
    p0.kind = cell_kind::pad;
    p0.position = point(0, 5);
    nl.add_cell(p0);
    cell p1;
    p1.name = "p1";
    p1.kind = cell_kind::pad;
    p1.position = point(10, 5);
    nl.add_cell(p1);

    const auto two_pin = [&](const std::string& name, cell_id x, cell_id y) {
        net n;
        n.name = name;
        n.pins = {{x, {}}, {y, {}}};
        n.driver = 0;
        nl.add_net(std::move(n));
    };
    two_pin("n0", 2, 0);
    two_pin("n1", 0, 1);
    two_pin("n2", 1, 3);
    return nl;
}

TEST(QuadraticSystem, VariableMapping) {
    const netlist nl = chain_netlist();
    const quadratic_system sys(nl);
    EXPECT_EQ(sys.num_movable(), 2u);
    EXPECT_EQ(sys.num_vars(), 2u);
    EXPECT_EQ(sys.var_of(0), 0u);
    EXPECT_EQ(sys.var_of(1), 1u);
    EXPECT_EQ(sys.var_of(2), invalid_var); // pad
    EXPECT_EQ(sys.cell_of_var(0), 0u);
}

TEST(QuadraticSystem, SolveBeforeAssembleThrows) {
    const netlist nl = chain_netlist();
    const quadratic_system sys(nl);
    EXPECT_THROW(sys.solve(nl.centered_placement(), {}, {}), check_error);
}

TEST(QuadraticSystem, ChainEquilibriumIsEquispaced) {
    const netlist nl = chain_netlist();
    net_model_options opt;
    opt.linearize = false; // pure quadratic: exact thirds
    quadratic_system sys(nl, opt);
    sys.assemble(nl.centered_placement());
    const placement pl = sys.solve(nl.centered_placement(), {}, {});
    EXPECT_NEAR(pl[0].x, 10.0 / 3.0, 1e-6);
    EXPECT_NEAR(pl[1].x, 20.0 / 3.0, 1e-6);
    EXPECT_NEAR(pl[0].y, 5.0, 1e-6);
    EXPECT_NEAR(pl[1].y, 5.0, 1e-6);
}

TEST(QuadraticSystem, MatricesAreSymmetric) {
    const netlist nl = chain_netlist();
    quadratic_system sys(nl);
    sys.assemble(nl.centered_placement());
    EXPECT_TRUE(sys.matrix_x().is_symmetric());
    EXPECT_TRUE(sys.matrix_y().is_symmetric());
}

TEST(QuadraticSystem, AdditionalForceDisplacesSolution) {
    // A single movable cell tied to one fixed pad; force e displaces the
    // equilibrium by -e/w per the sign convention (e enters C p + d + e = 0).
    netlist nl;
    nl.set_region(rect(0, 0, 10, 10));
    cell a;
    a.name = "a";
    nl.add_cell(a);
    cell p;
    p.name = "p";
    p.kind = cell_kind::pad;
    p.position = point(5, 5);
    nl.add_cell(p);
    net n;
    n.pins = {{0, {}}, {1, {}}};
    n.driver = 0;
    nl.add_net(n);

    net_model_options opt;
    opt.linearize = false;
    quadratic_system sys(nl, opt);
    sys.assemble(nl.centered_placement());

    // Edge weight for a 2-pin clique net: 1/2.
    const std::vector<double> ex{-1.0};
    const std::vector<double> ey{0.5};
    const placement pl = sys.solve(nl.centered_placement(), ex, ey);
    EXPECT_NEAR(pl[0].x, 5.0 + 1.0 / 0.5, 1e-6);
    EXPECT_NEAR(pl[0].y, 5.0 - 0.5 / 0.5, 1e-6);
}

TEST(QuadraticSystem, AnyPlacementIsReachableWithSuitableForces) {
    // Section 2.2: "any given placement can fulfill equation (3) if the
    // additional forces are chosen appropriately": e = -(C p + d).
    const netlist nl = chain_netlist();
    net_model_options opt;
    opt.linearize = false;
    quadratic_system sys(nl, opt);
    placement target = nl.centered_placement();
    target[0] = point(2.0, 7.0);
    target[1] = point(9.0, 1.0);
    sys.assemble(target);

    const std::vector<point> vp = sys.variable_positions(target);
    std::vector<double> px(sys.num_vars()), py(sys.num_vars());
    for (std::size_t v = 0; v < sys.num_vars(); ++v) {
        px[v] = vp[v].x;
        py[v] = vp[v].y;
    }
    std::vector<double> ax, ay;
    sys.matrix_x().multiply(px, ax);
    sys.matrix_y().multiply(py, ay);
    std::vector<double> ex(sys.num_vars()), ey(sys.num_vars());
    for (std::size_t v = 0; v < sys.num_vars(); ++v) {
        ex[v] = -(ax[v] + sys.rhs_x()[v]);
        ey[v] = -(ay[v] + sys.rhs_y()[v]);
    }
    const placement recovered = sys.solve(nl.centered_placement(), ex, ey);
    EXPECT_NEAR(recovered[0].x, 2.0, 1e-6);
    EXPECT_NEAR(recovered[0].y, 7.0, 1e-6);
    EXPECT_NEAR(recovered[1].x, 9.0, 1e-6);
    EXPECT_NEAR(recovered[1].y, 1.0, 1e-6);
}

TEST(QuadraticSystem, PinOffsetsShiftEquilibrium) {
    netlist nl;
    nl.set_region(rect(0, 0, 10, 10));
    cell a;
    a.name = "a";
    a.width = 2.0;
    nl.add_cell(a);
    cell p;
    p.name = "p";
    p.kind = cell_kind::pad;
    p.position = point(5, 5);
    nl.add_cell(p);
    net n;
    // Pin at the cell's right edge: center settles so pin meets the pad.
    n.pins = {{0, point(1.0, 0.0)}, {1, {}}};
    n.driver = 0;
    nl.add_net(n);

    net_model_options opt;
    opt.linearize = false;
    quadratic_system sys(nl, opt);
    sys.assemble(nl.centered_placement());
    const placement pl = sys.solve(nl.centered_placement(), {}, {});
    EXPECT_NEAR(pl[0].x, 4.0, 1e-6);
}

TEST(QuadraticSystem, StarModelMatchesCliqueSolution) {
    // Star with edge weight w eliminates to a clique with w/k — identical
    // equilibria for the cells.
    generator_options gen;
    gen.num_cells = 120;
    gen.num_nets = 140;
    gen.num_rows = 6;
    gen.num_pads = 16;
    gen.max_degree = 12;
    const netlist nl = generate_circuit(gen);

    net_model_options clique_opt;
    clique_opt.kind = net_model_kind::clique;
    clique_opt.linearize = false;
    quadratic_system clique_sys(nl, clique_opt);
    clique_sys.assemble(nl.centered_placement());
    cg_options cg;
    cg.tolerance = 1e-12;
    const placement clique_pl = clique_sys.solve(nl.centered_placement(), {}, {}, cg);

    net_model_options star_opt;
    star_opt.kind = net_model_kind::star;
    star_opt.linearize = false;
    quadratic_system star_sys(nl, star_opt);
    star_sys.assemble(nl.centered_placement());
    const placement star_pl = star_sys.solve(nl.centered_placement(), {}, {}, cg);

    EXPECT_GT(star_sys.num_vars(), star_sys.num_movable()); // has star centers

    // The two formulations share the same objective (the star eliminates to
    // the clique), so the star solution must be clique-optimal. Positions
    // can differ measurably along near-flat directions (dangling cells), so
    // the position check is loose and the objective check is the tight one.
    const double obj_clique = clique_sys.objective(clique_pl);
    const double obj_star = clique_sys.objective(star_pl);
    EXPECT_NEAR(obj_star / obj_clique, 1.0, 1e-6);
    for (cell_id i = 0; i < nl.num_cells(); ++i) {
        if (nl.cell_at(i).fixed) continue;
        EXPECT_NEAR(clique_pl[i].x, star_pl[i].x, 0.5);
        EXPECT_NEAR(clique_pl[i].y, star_pl[i].y, 0.5);
    }
}

TEST(QuadraticSystem, HybridUsesStarsOnlyAboveThreshold) {
    generator_options gen;
    gen.num_cells = 100;
    gen.num_nets = 120;
    gen.num_rows = 6;
    gen.num_pads = 8;
    const netlist nl = generate_circuit(gen);

    net_model_options opt;
    opt.kind = net_model_kind::hybrid;
    opt.star_threshold = 5;
    const quadratic_system sys(nl, opt);
    std::size_t big_nets = 0;
    for (const net& n : nl.nets()) {
        if (n.degree() > 5) ++big_nets;
    }
    EXPECT_EQ(sys.num_vars() - sys.num_movable(), big_nets);
}

TEST(QuadraticSystem, LiveNetWeightUpdates) {
    netlist nl = chain_netlist();
    net_model_options opt;
    opt.linearize = false;
    quadratic_system sys(nl, opt);
    sys.assemble(nl.centered_placement());
    const double d0 = sys.matrix_x().at(0, 0);

    nl.net_at(0).weight = 4.0; // heavier pull toward the left pad
    sys.assemble(nl.centered_placement());
    const double d1 = sys.matrix_x().at(0, 0);
    EXPECT_GT(d1, d0);

    const placement pl = sys.solve(nl.centered_placement(), {}, {});
    EXPECT_LT(pl[0].x, 10.0 / 3.0); // cell a pulled toward pad p0
}

TEST(QuadraticSystem, LinearizationReducesLongEdgeInfluence) {
    const netlist nl = chain_netlist();
    net_model_options lin;
    lin.linearize = true;
    quadratic_system sys(nl, lin);
    // Current placement: cell a near the left pad, so edge n0 is short and
    // n1 long → n0's weight per unit length is larger.
    placement current = nl.centered_placement();
    current[0] = point(1.0, 5.0);
    current[1] = point(9.0, 5.0);
    sys.assemble(current);
    const placement pl = sys.solve(current, {}, {});
    // With 1/length weights the equilibrium is dragged toward the current
    // positions relative to the pure quadratic thirds.
    EXPECT_LT(pl[0].x, 10.0 / 3.0);
    EXPECT_GT(pl[1].x, 20.0 / 3.0);
}

TEST(QuadraticSystem, ObjectiveDecreasesAtSolution) {
    const netlist nl = chain_netlist();
    net_model_options opt;
    opt.linearize = false;
    quadratic_system sys(nl, opt);
    const placement start = nl.centered_placement();
    sys.assemble(start);
    const placement solved = sys.solve(start, {}, {});
    EXPECT_LE(sys.objective(solved), sys.objective(start) + 1e-9);
}

TEST(QuadraticSystem, MeanStiffnessPositive) {
    const netlist nl = chain_netlist();
    const quadratic_system sys(nl);
    EXPECT_GT(sys.mean_stiffness(), 0.0);
}

} // namespace
} // namespace gpf
