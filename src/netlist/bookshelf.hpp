// Bookshelf-style interchange (.nodes / .nets / .pl / .scl).
//
// Lets real benchmark data (e.g. actual MCNC/Bookshelf archives) be dropped
// into the harness in place of the synthetic suite, and lets placements be
// exported to other tools. The writer emits standard UCLA Bookshelf
// headers; the reader accepts the writer's output plus the common layout
// variations (comments, blank lines, flexible whitespace). Cell kinds are
// reconstructed on read: `terminal` nodes become pads, movable nodes taller
// than the row height become blocks.
#pragma once

#include <stdexcept>
#include <string>

#include "netlist/netlist.hpp"

namespace gpf {

struct bookshelf_design {
    netlist nl;
    placement pl;
};

/// Writes base_path + ".nodes"/".nets"/".pl"/".scl".
/// Positions in the .pl file follow the Bookshelf convention (lower-left
/// corner); the in-memory model uses centers.
void write_bookshelf(const netlist& nl, const placement& pl,
                     const std::string& base_path);

/// Reads base_path + ".nodes"/".nets"/".pl" and, when present, ".scl".
/// Throws check_error on malformed input or io_error on missing files.
bookshelf_design read_bookshelf(const std::string& base_path);

/// Thrown when a bookshelf file cannot be opened.
class io_error : public std::runtime_error {
public:
    explicit io_error(const std::string& what) : std::runtime_error(what) {}
};

} // namespace gpf
