// Component micro-benchmarks (google-benchmark): the per-transformation
// building blocks of the placer and both legalizers, so performance
// regressions in the substrates are visible independently of table runs.
//
// The *_threads benchmarks sweep the worker-pool size (1, 2, N=hardware)
// over the threaded kernels so BENCH_*.json captures the speedup
// trajectory; results are bitwise identical across the sweep by the
// determinism contract (tests/test_parallel.cpp).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>

#include "gpf.hpp"

namespace {

using namespace gpf;

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
// Sanitized benchmark builds pin the kernel dispatch to the scalar
// reference (results are bitwise identical; the intrinsic paths are not
// what the sanitizer is here to check). setenv with overwrite=0 keeps an
// explicit GPF_SIMD from the caller authoritative.
const int force_scalar_simd = [] { return setenv("GPF_SIMD", "scalar", 0); }();
#endif

/// Pool size for a benchmark arg: 1, 2, ... with 0 meaning "hardware".
void use_threads(std::int64_t arg) {
    thread_pool::instance().set_num_threads(
        arg == 0 ? thread_pool::default_thread_count()
                 : static_cast<std::size_t>(arg));
}

void thread_sweep(benchmark::internal::Benchmark* b) {
    b->Arg(1)->Arg(2)->Arg(0); // 0 = hardware concurrency
    b->ArgName("threads");
}

netlist make_circuit(std::size_t cells) {
    generator_options opt;
    opt.num_cells = cells;
    opt.num_nets = cells + cells / 8;
    opt.num_rows = std::max<std::size_t>(8, cells / 60);
    opt.num_pads = 64;
    opt.seed = 12345;
    return generate_circuit(opt);
}

void bm_density_stamping(benchmark::State& state) {
    const netlist nl = make_circuit(static_cast<std::size_t>(state.range(0)));
    const placement pl = nl.initial_placement();
    for (auto _ : state) {
        benchmark::DoNotOptimize(compute_density(nl, pl, 4096));
    }
}
BENCHMARK(bm_density_stamping)->Arg(1000)->Arg(4000);

void bm_force_field_fft(benchmark::State& state) {
    const netlist nl = make_circuit(2000);
    placer p(nl, {});
    const placement pl = p.run();
    const density_map d = compute_density(nl, pl, static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(compute_force_field(d));
    }
}
BENCHMARK(bm_force_field_fft)->Arg(1024)->Arg(4096)->Arg(16384);

void bm_system_assemble(benchmark::State& state) {
    const netlist nl = make_circuit(static_cast<std::size_t>(state.range(0)));
    const placement pl = nl.centered_placement();
    quadratic_system sys(nl);
    for (auto _ : state) {
        sys.assemble(pl);
        benchmark::DoNotOptimize(sys.matrix_x().nonzeros());
    }
}
BENCHMARK(bm_system_assemble)->Arg(1000)->Arg(4000);

void bm_cg_solve(benchmark::State& state) {
    const netlist nl = make_circuit(static_cast<std::size_t>(state.range(0)));
    const placement pl = nl.centered_placement();
    quadratic_system sys(nl);
    sys.assemble(pl);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sys.solve(pl, {}, {}));
    }
}
BENCHMARK(bm_cg_solve)->Arg(1000)->Arg(4000);

void bm_placement_transformation(benchmark::State& state) {
    const netlist nl = make_circuit(static_cast<std::size_t>(state.range(0)));
    placer p(nl, {});
    placement pl = p.run();
    for (auto _ : state) {
        pl = p.transform(pl);
        benchmark::DoNotOptimize(pl.size());
    }
}
BENCHMARK(bm_placement_transformation)->Arg(1000)->Arg(4000);

void bm_tetris_legalize(benchmark::State& state) {
    const netlist nl = make_circuit(static_cast<std::size_t>(state.range(0)));
    placer p(nl, {});
    const placement global = p.run();
    for (auto _ : state) {
        benchmark::DoNotOptimize(tetris_legalize(nl, global));
    }
}
BENCHMARK(bm_tetris_legalize)->Arg(1000)->Arg(4000);

void bm_abacus_legalize(benchmark::State& state) {
    const netlist nl = make_circuit(static_cast<std::size_t>(state.range(0)));
    placer p(nl, {});
    const placement global = p.run();
    for (auto _ : state) {
        benchmark::DoNotOptimize(abacus_legalize(nl, global));
    }
}
BENCHMARK(bm_abacus_legalize)->Arg(1000)->Arg(4000);

void bm_sta(benchmark::State& state) {
    const netlist nl = make_circuit(static_cast<std::size_t>(state.range(0)));
    const placement pl = nl.initial_placement();
    const timing_graph graph(nl);
    const timing_config config;
    for (auto _ : state) {
        benchmark::DoNotOptimize(run_sta(graph, pl, config));
    }
}
BENCHMARK(bm_sta)->Arg(1000)->Arg(4000);

// --------------------------------------------------------------------------
// Thread sweeps over the parallel kernels (arg = pool size, 0 = hardware).
// The acceptance pipeline: density stamping + FFT force field on a 256×256
// grid, the per-transformation hot path of section 3.3 / eq. (9).
// --------------------------------------------------------------------------

void bm_density_forcefield_pipeline_threads(benchmark::State& state) {
    use_threads(state.range(0));
    const netlist nl = make_circuit(8000);
    const placement pl = nl.initial_placement();
    for (auto _ : state) {
        const density_map d = compute_density_grid(nl, pl, 256, 256);
        benchmark::DoNotOptimize(compute_force_field(d));
    }
    state.SetLabel("256x256 grid");
    use_threads(1);
}
BENCHMARK(bm_density_forcefield_pipeline_threads)->Apply(thread_sweep)
    ->Unit(benchmark::kMillisecond);

/// The same pipeline with the iteration-persistent spectral calculator the
/// placer loop uses (DESIGN.md §7): kernel spectra are built once, each
/// iteration pays only the stamping plus the two packed transforms.
void bm_density_forcefield_pipeline_cached_threads(benchmark::State& state) {
    use_threads(state.range(0));
    const netlist nl = make_circuit(8000);
    const placement pl = nl.initial_placement();
    force_field_calculator calc(nl.region(), 256, 256);
    for (auto _ : state) {
        const density_map d = compute_density_grid(nl, pl, 256, 256);
        benchmark::DoNotOptimize(calc.compute(d));
    }
    state.SetLabel("256x256 grid, cached kernels");
    use_threads(1);
}
BENCHMARK(bm_density_forcefield_pipeline_cached_threads)->Apply(thread_sweep)
    ->Unit(benchmark::kMillisecond);

void bm_density_stamping_threads(benchmark::State& state) {
    use_threads(state.range(0));
    const netlist nl = make_circuit(8000);
    const placement pl = nl.initial_placement();
    for (auto _ : state) {
        benchmark::DoNotOptimize(compute_density_grid(nl, pl, 256, 256));
    }
    use_threads(1);
}
BENCHMARK(bm_density_stamping_threads)->Apply(thread_sweep);

void bm_force_field_fft_threads(benchmark::State& state) {
    use_threads(state.range(0));
    const netlist nl = make_circuit(2000);
    const placement pl = nl.initial_placement();
    const density_map d = compute_density_grid(nl, pl, 256, 256);
    for (auto _ : state) {
        benchmark::DoNotOptimize(compute_force_field(d));
    }
    use_threads(1);
}
BENCHMARK(bm_force_field_fft_threads)->Apply(thread_sweep)
    ->Unit(benchmark::kMillisecond);

void bm_cg_solve_threads(benchmark::State& state) {
    use_threads(state.range(0));
    const netlist nl = make_circuit(4000);
    const placement pl = nl.centered_placement();
    quadratic_system sys(nl);
    sys.assemble(pl);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sys.solve(pl, {}, {}));
    }
    use_threads(1);
}
BENCHMARK(bm_cg_solve_threads)->Apply(thread_sweep);

void bm_placement_transformation_threads(benchmark::State& state) {
    use_threads(state.range(0));
    const netlist nl = make_circuit(4000);
    placer p(nl, {});
    placement pl = p.run();
    for (auto _ : state) {
        pl = p.transform(pl);
        benchmark::DoNotOptimize(pl.size());
    }
    use_threads(1);
}
BENCHMARK(bm_placement_transformation_threads)->Apply(thread_sweep);

/// The transformation with every iteration-persistent cache disabled — the
/// pre-caching hot path, kept as the baseline the cached loop is measured
/// against (placements are bitwise identical either way).
void bm_placement_transformation_nocache(benchmark::State& state) {
    placer_options opt;
    opt.iteration_cache = false;
    const netlist nl = make_circuit(static_cast<std::size_t>(state.range(0)));
    placer p(nl, opt);
    placement pl = p.run();
    for (auto _ : state) {
        pl = p.transform(pl);
        benchmark::DoNotOptimize(pl.size());
    }
}
BENCHMARK(bm_placement_transformation_nocache)->Arg(1000)->Arg(4000);

/// Warm-started hold-and-move solves (placer_options::warm_start_cg):
/// deterministic but not bitwise comparable to the cold-start default, so
/// it is benchmarked separately rather than folded into the cached loop.
void bm_placement_transformation_warmstart(benchmark::State& state) {
    placer_options opt;
    opt.warm_start_cg = true;
    const netlist nl = make_circuit(static_cast<std::size_t>(state.range(0)));
    placer p(nl, opt);
    placement pl = p.run();
    for (auto _ : state) {
        pl = p.transform(pl);
        benchmark::DoNotOptimize(pl.size());
    }
}
BENCHMARK(bm_placement_transformation_warmstart)->Arg(1000)->Arg(4000);

void bm_rudy(benchmark::State& state) {
    const netlist nl = make_circuit(2000);
    const placement pl = nl.initial_placement();
    for (auto _ : state) {
        benchmark::DoNotOptimize(rudy_map(nl, pl, nl.region(), 128, 32));
    }
}
BENCHMARK(bm_rudy);

} // namespace

BENCHMARK_MAIN();
