#include "legal/legalize.hpp"

#include <cmath>

#include "core/metrics.hpp"
#include "util/check.hpp"
#include "verify/verify.hpp"

namespace gpf {

legalize_result legalize(const netlist& nl, const placement& global, placement& out,
                         const legalize_options& options) {
    // A non-finite coordinate would silently poison the row-cost sums and
    // scatter cells; reject it here as the contract violation it is.
    GPF_CHECK_MSG(global.size() == nl.num_cells(),
                  "legalize: placement has " << global.size() << " positions for "
                                             << nl.num_cells() << " cells");
    for (cell_id i = 0; i < nl.num_cells(); ++i) {
        GPF_CHECK_MSG(std::isfinite(global[i].x) && std::isfinite(global[i].y),
                      "legalize: non-finite global position of cell '"
                          << nl.cell_at(i).name << "'");
    }

    legalize_result result;
    result.hpwl_global = total_hpwl(nl, global);

    placement work = global;
    result.blocks = legalize_blocks(nl, work, options.blocks);

    switch (options.algorithm) {
        case row_legalizer::tetris:
            work = tetris_legalize(nl, work, options.tetris);
            break;
        case row_legalizer::abacus:
            work = abacus_legalize(nl, work, options.abacus);
            break;
    }
    result.hpwl_legal = total_hpwl(nl, work);
    // Row legalization postcondition (GPF_VERIFY=1): aligned, contained,
    // overlap-free, fixed cells untouched. refine_detailed() re-checks its
    // own output, so together every stage boundary is covered.
    checkpoint_legal_placement(nl, work, "legalize (row legalization)");

    if (options.run_refinement) {
        result.refine = refine_detailed(nl, work, options.refine);
    }
    result.hpwl_refined = total_hpwl(nl, work);

    out = std::move(work);
    return result;
}

} // namespace gpf
