// SVG export of placements and density maps — the visual sanity check for
// every flow (examples write these next to their outputs).
#pragma once

#include <string>

#include "density/density_map.hpp"
#include "netlist/netlist.hpp"

namespace gpf {

struct svg_options {
    double pixels_per_unit = 8.0;  ///< image scale
    bool draw_nets = false;        ///< bounding boxes of nets (slow for big designs)
    std::size_t max_net_boxes = 400;
    bool color_by_kind = true;     ///< cells grey, blocks blue, pads black
};

/// Write the placement as an SVG image. Throws io_error when the file
/// cannot be created.
void write_placement_svg(const netlist& nl, const placement& pl,
                         const std::string& path, const svg_options& options = {});

/// Write a density (or congestion / thermal) map as an SVG heat map.
/// `values` must have map dimensions nx*ny (row-major, ix major); pass
/// e.g. density.demand() or a rudy/thermal map.
void write_heatmap_svg(const density_map& grid, const std::vector<double>& values,
                       const std::string& path, double pixels_per_unit = 8.0);

} // namespace gpf
