// Tetris-style greedy legalizer: standard cells sorted by x are packed
// left-to-right into row segments, each placed in the row that minimizes
// its displacement. Fast and robust; used as the default first legalization
// stage before Abacus refinement.
#pragma once

#include "legal/rows.hpp"
#include "netlist/netlist.hpp"

namespace gpf {

struct tetris_options {
    double vertical_penalty = 1.0; ///< weight of |dy| against |dx| in the row choice
    std::size_t row_search_span = 0; ///< rows to scan above/below (0 = all rows)
};

/// Legalize the movable standard cells of `nl` starting from `global`.
/// Blocks and fixed cells are treated as obstacles at their `global`
/// positions. Returns the legalized placement (blocks/fixed unchanged).
/// Throws check_error when a cell cannot be placed anywhere.
placement tetris_legalize(const netlist& nl, const placement& global,
                          const tetris_options& options = {});

} // namespace gpf
