// Macro-block legalization for mixed block/cell placement: removes the
// (small) residual overlaps between movable blocks after global placement
// by iterative pairwise separation along the axis of least overlap, with
// block heights snapped to row boundaries. Standard cells are placed
// afterwards with the blocks as obstacles.
#pragma once

#include "netlist/netlist.hpp"

namespace gpf {

struct block_legalize_options {
    std::size_t max_iterations = 200;
    bool snap_to_rows = true; ///< align block bottoms to row boundaries
};

struct block_legalize_result {
    std::size_t iterations = 0;
    double residual_overlap = 0.0; ///< remaining block-block overlap area
    double total_displacement = 0.0;
};

/// Separate movable blocks in place; fixed blocks act as rigid obstacles.
block_legalize_result legalize_blocks(const netlist& nl, placement& pl,
                                      const block_legalize_options& options = {});

} // namespace gpf
