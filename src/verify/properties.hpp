// Property-based invariant layer (DESIGN.md §12).
//
// The verifier of DESIGN.md §8 checks *structural* invariants of one
// concrete pipeline state. This layer checks the *analytic* invariants the
// transformation loop silently relies on, across randomized instances
// drawn from seeded distributions — the variational properties that the
// Poisson-energy formulation of the force field makes explicit:
//
//   * conservativeness   — the force field is the gradient of a potential,
//                          so its discrete curl vanishes (up to the finite-
//                          difference truncation of sampling ∇G);
//   * anti-symmetry      — eq. (9) is linear and odd in D: negating every
//                          demand stamp negates the field exactly;
//   * ∫D ≈ 0             — finalize() subtracts the mean demand as supply,
//                          so the density integrates to zero for any rect
//                          mix, including rects overhanging the region;
//   * spectral == direct — the FFT evaluation of the Green's-function
//                          convolution equals the literal O(m⁴) sum;
//   * r2c soundness      — the packed real-to-complex transforms invert
//                          exactly (r2c ∘ c2r == identity) and the
//                          half-spectrum convolution equals the full
//                          complex wrap-around evaluation;
//   * model equivalence  — star decomposition with the center eliminated
//                          is mathematically the 1/k clique, so all three
//                          net models solve to the same placement within a
//                          bound derived from the CG residual tolerance;
//   * conservation       — every coarsening level conserves movable area
//                          and the pin accounting, re-checked from the
//                          fine/coarse pair alone (verify_coarsening);
//   * stop-best monotone — when the recovery ladder (or a resource guard)
//                          ends a run, the returned placement is never
//                          worse than the best-scoring healthy iteration;
//   * resume == run      — a run checkpointed every transformation, cut at
//                          a seed-varied iteration and resumed from the
//                          checkpoint file (DESIGN.md §14) finishes with a
//                          bitwise-identical placement and history.
//
// Every check is a pure function of its seed: check(seed) builds its own
// instance from seeded distributions and returns a verify_report, so a CI
// failure replays locally from the seed alone. The catalogue lets harness
// code (tests/test_invariant_properties.cpp, the nightly deep sweep) drive
// all checks uniformly and log failing seeds as reproducers.
#pragma once

#include <cstdint>
#include <vector>

#include "verify/verify.hpp"

namespace gpf {

struct property_options {
    /// Conservativeness: aggregate |curl f| over interior bins must stay
    /// below this fraction of the aggregate |D| (the natural scale — the
    /// same sampled-kernel truncation error bounds both the curl and the
    /// divergence defect). Calibrated empirically: 500 seeds of the
    /// random_density distribution measured a worst ratio of 0.188
    /// (coarse, strongly anisotropic grids dominate); 0.30 leaves ~1.6×
    /// headroom while still catching a sign slip or axis swap, which push
    /// the ratio past 1. See DESIGN.md §12.
    double curl_ratio_limit = 0.30;
    /// Anti-symmetry: |f(-D) + f(D)| per bin, relative to max |f(D)|.
    double antisymmetry_tol = 1e-12;
    /// ∫D: |Σ D·binarea| relative to the total stamped demand area.
    double zero_integral_tol = 1e-9;
    /// Spectral vs direct field: max abs difference relative to max |f|.
    double fft_vs_direct_tol = 1e-8;
    /// Packed r2c ∘ c2r identity: max abs error relative to max |data|.
    double r2c_roundtrip_tol = 1e-12;
    /// r2c convolution vs the full complex wrap-around path, relative to
    /// max |out|. Tolerance-based, not bitwise: the half-spectrum path
    /// evaluates twiddles at different angles than the full-width path,
    /// and libm does not guarantee cos(π − x) == -cos(x) to the last ulp.
    double r2c_vs_complex_tol = 1e-10;
    /// Net-model equivalence: per-cell position difference as a fraction
    /// of (W + H). Derived from the CG contract: both solves stop at
    /// relative residual r ≤ cg_tolerance, so the position error is
    /// bounded by r·‖b‖/λmin; with the generator's diagonally dominant
    /// Laplacians λmin is of order the smallest pin weight and the bound
    /// evaluates to ≲ 10³·cg_tolerance·(W+H) — we gate an order of
    /// magnitude tighter than worst case and two looser than typical.
    double model_position_tol_fraction = 1e-6;
    /// CG relative residual tolerance used by the equivalence solves.
    double model_cg_tolerance = 1e-10;
    /// Coarsening: hierarchy depth requested from build_hierarchy.
    std::size_t hierarchy_levels = 3;
};

/// One randomized-instance invariant check: builds a seeded instance and
/// returns every violation found (empty report = invariant held).
using property_fn = verify_report (*)(std::uint64_t seed,
                                      const property_options& opt);

verify_report check_force_field_conservative(std::uint64_t seed,
                                             const property_options& opt = {});
verify_report check_force_field_antisymmetry(std::uint64_t seed,
                                             const property_options& opt = {});
verify_report check_density_zero_integral(std::uint64_t seed,
                                          const property_options& opt = {});
verify_report check_fft_field_matches_direct(std::uint64_t seed,
                                             const property_options& opt = {});
verify_report check_r2c_transform_roundtrip(std::uint64_t seed,
                                            const property_options& opt = {});
verify_report check_r2c_convolution_matches_complex(
    std::uint64_t seed, const property_options& opt = {});
verify_report check_net_model_equivalence(std::uint64_t seed,
                                          const property_options& opt = {});
verify_report check_coarsening_conservation(std::uint64_t seed,
                                            const property_options& opt = {});
verify_report check_stop_best_monotonic(std::uint64_t seed,
                                        const property_options& opt = {});
verify_report check_checkpoint_resume_equivalence(
    std::uint64_t seed, const property_options& opt = {});

struct property_check {
    const char* name; ///< stable id, used in failure-reproducer logs
    property_fn fn;
};

/// All checks above, in a stable order.
const std::vector<property_check>& property_catalogue();

} // namespace gpf
