#include "verify/verify.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "util/check.hpp"

namespace gpf {

namespace {

bool finite(double v) { return std::isfinite(v); }
bool finite(const point& p) { return finite(p.x) && finite(p.y); }

std::string fmt(double v) {
    std::ostringstream os;
    os << v;
    return os.str();
}

std::string fmt(const point& p) {
    std::ostringstream os;
    os << '(' << p.x << ", " << p.y << ')';
    return os.str();
}

} // namespace

void verify_report::add(std::string where, std::string message) {
    ++total_;
    if (violations_.size() < max_recorded) {
        violations_.push_back({std::move(where), std::move(message)});
    }
}

std::string verify_report::to_string() const {
    if (ok()) return {};
    std::ostringstream os;
    os << total_ << " violation" << (total_ == 1 ? "" : "s");
    for (const violation& v : violations_) {
        os << "\n  [" << v.where << "] " << v.message;
    }
    if (total_ > violations_.size()) {
        os << "\n  ... " << (total_ - violations_.size()) << " more";
    }
    return os.str();
}

void verify_report::require(const std::string& stage) const {
    if (ok()) return;
    throw check_error("verification failed at " + stage + ": " + to_string());
}

verify_report verify_netlist(const netlist& nl, const verify_options& opt) {
    verify_report report;
    const rect region = nl.region();

    if (region.empty() || !finite(region.xlo) || !finite(region.ylo) ||
        !finite(region.xhi) || !finite(region.yhi)) {
        report.add("region", "placement region is empty or non-finite");
    }
    if (!(nl.row_height() > 0.0) || !finite(nl.row_height())) {
        report.add("region", "row height must be positive and finite, is " +
                                 fmt(nl.row_height()));
    }

    for (cell_id i = 0; i < nl.num_cells(); ++i) {
        const cell& c = nl.cell_at(i);
        const std::string where = "cell " + c.name;
        if (!(c.width > 0.0) || !(c.height > 0.0) || !finite(c.width) ||
            !finite(c.height)) {
            report.add(where, "non-positive or non-finite dimensions " + fmt(c.width) +
                                  " x " + fmt(c.height));
        }
        if (!finite(c.position)) {
            report.add(where, "non-finite stored position " + fmt(c.position));
        }
        if (c.kind == cell_kind::pad && !c.fixed) {
            report.add(where, "pad must be fixed");
        }
        // Fixed core cells are density *supply sinks*; one outside the
        // region makes the demand/supply balance (∫D = 0) unattainable.
        // Pads are exempt — they live on or outside the boundary. Gated
        // with check_feasibility: a parser that read such a design read it
        // *faithfully*; the design is infeasible, not corrupt.
        if (opt.check_feasibility && c.fixed && c.kind != cell_kind::pad &&
            !region.empty() && finite(c.position)) {
            const rect r = rect::from_center(c.position, c.width, c.height);
            const rect grown(region.xlo - opt.tolerance, region.ylo - opt.tolerance,
                             region.xhi + opt.tolerance, region.yhi + opt.tolerance);
            if (!grown.contains(r)) {
                report.add(where, "fixed cell at " + fmt(c.position) +
                                      " extends outside the region");
            }
        }
    }

    for (net_id ni = 0; ni < nl.num_nets(); ++ni) {
        const net& n = nl.net_at(ni);
        const std::string where =
            "net " + (n.name.empty() ? "#" + std::to_string(ni) : n.name);
        std::unordered_set<cell_id> seen;
        for (const pin& p : n.pins) {
            if (p.cell >= nl.num_cells()) {
                report.add(where, "pin references unknown cell index " +
                                      std::to_string(p.cell));
                continue;
            }
            if (!seen.insert(p.cell).second) {
                report.add(where,
                           "duplicate pin on cell " + nl.cell_at(p.cell).name);
            }
            if (!finite(p.offset)) {
                report.add(where, "non-finite pin offset " + fmt(p.offset));
            }
        }
        if (n.driver != no_driver && n.driver >= n.pins.size()) {
            report.add(where, "driver index " + std::to_string(n.driver) +
                                  " out of range for degree " +
                                  std::to_string(n.degree()));
        }
        if (!(n.weight > 0.0) || !finite(n.weight)) {
            report.add(where, "non-positive or non-finite weight " + fmt(n.weight));
        }
    }

    if (opt.check_feasibility && !region.empty()) {
        const double core = nl.core_cell_area();
        const double available = region.area();
        if (core > available * (1.0 + 1e-9) + opt.tolerance) {
            report.add("region", "core cell area " + fmt(core) +
                                     " exceeds region area " + fmt(available) +
                                     " — density cannot integrate to zero");
        }
    }

    return report;
}

namespace {

/// Shared head of the placement validators; returns false when the
/// placement is unusable (size mismatch) and per-cell checks must stop.
bool check_placement_common(const netlist& nl, const placement& pl,
                            const verify_options& opt, bool require_in_region,
                            verify_report& report) {
    if (pl.size() != nl.num_cells()) {
        report.add("placement", "has " + std::to_string(pl.size()) +
                                    " positions for " +
                                    std::to_string(nl.num_cells()) + " cells");
        return false;
    }
    const rect region = nl.region();
    const rect grown(region.xlo - opt.tolerance, region.ylo - opt.tolerance,
                     region.xhi + opt.tolerance, region.yhi + opt.tolerance);
    for (cell_id i = 0; i < nl.num_cells(); ++i) {
        const cell& c = nl.cell_at(i);
        const std::string where = "cell " + c.name;
        if (!finite(pl[i])) {
            report.add(where, "non-finite position " + fmt(pl[i]));
            continue;
        }
        if (c.fixed) {
            if (std::abs(pl[i].x - c.position.x) > opt.tolerance ||
                std::abs(pl[i].y - c.position.y) > opt.tolerance) {
                report.add(where, "fixed cell moved from " + fmt(c.position) +
                                      " to " + fmt(pl[i]));
            }
            continue;
        }
        if (require_in_region && c.kind != cell_kind::pad &&
            !grown.contains(pl[i])) {
            report.add(where, "center " + fmt(pl[i]) + " outside region");
        }
    }
    return true;
}

} // namespace

verify_report verify_global_placement(const netlist& nl, const placement& pl,
                                      const verify_options& opt) {
    verify_report report;
    check_placement_common(nl, pl, opt, opt.check_in_region, report);
    return report;
}

verify_report verify_legal_placement(const netlist& nl, const placement& pl,
                                     const verify_options& opt) {
    verify_report report;
    if (!check_placement_common(nl, pl, opt, /*require_in_region=*/true, report)) {
        return report;
    }
    const rect region = nl.region();
    const double row_height = nl.row_height();

    // Row alignment and containment of the full cell extent.
    std::vector<std::pair<rect, cell_id>> rects;
    rects.reserve(nl.num_cells());
    for (cell_id i = 0; i < nl.num_cells(); ++i) {
        const cell& c = nl.cell_at(i);
        if (c.kind == cell_kind::pad || !finite(pl[i])) continue;
        const rect r = rect::from_center(pl[i], c.width, c.height);
        rects.emplace_back(r, i);
        if (c.fixed) continue; // fixed cells are where they are
        const std::string where = "cell " + c.name;
        if (r.xlo < region.xlo - opt.tolerance || r.xhi > region.xhi + opt.tolerance ||
            r.ylo < region.ylo - opt.tolerance || r.yhi > region.yhi + opt.tolerance) {
            report.add(where, "extent " + fmt(point(r.xlo, r.ylo)) + "-" +
                                  fmt(point(r.xhi, r.yhi)) + " outside region");
        }
        if (c.kind == cell_kind::standard && row_height > 0.0) {
            const double rows = (r.ylo - region.ylo) / row_height;
            const double nearest = std::round(rows);
            if (std::abs(rows - nearest) * row_height > opt.tolerance) {
                report.add(where, "bottom y=" + fmt(r.ylo) +
                                      " not aligned to a row (offset " +
                                      fmt((rows - nearest) * row_height) + ")");
            }
        }
    }

    // Overlap-freedom over all non-pad cells (movable and fixed): sweep
    // over x with an active set pruned by xhi. Overlaps whose penetration
    // depth on both axes exceeds the tolerance are violations.
    std::sort(rects.begin(), rects.end(), [](const auto& a, const auto& b) {
        return a.first.xlo < b.first.xlo;
    });
    std::vector<std::size_t> active;
    for (std::size_t k = 0; k < rects.size(); ++k) {
        const rect& r = rects[k].first;
        std::size_t keep = 0;
        for (std::size_t a = 0; a < active.size(); ++a) {
            const rect& o = rects[active[a]].first;
            if (o.xhi <= r.xlo + opt.tolerance) continue; // left the window
            active[keep++] = active[a];
            const double dx = std::min(r.xhi, o.xhi) - std::max(r.xlo, o.xlo);
            const double dy = std::min(r.yhi, o.yhi) - std::max(r.ylo, o.ylo);
            if (dx > opt.tolerance && dy > opt.tolerance) {
                report.add("cell " + nl.cell_at(rects[k].second).name,
                           "overlaps cell " + nl.cell_at(rects[active[keep - 1]].second).name +
                               " by " + fmt(dx) + " x " + fmt(dy));
            }
        }
        active.resize(keep);
        active.push_back(k);
    }

    return report;
}

verify_report verify_coarsening(const netlist& fine, const netlist& coarse,
                                const std::vector<cell_id>& parent,
                                const verify_options& opt) {
    verify_report report;
    (void)opt;
    if (parent.size() != fine.num_cells()) {
        report.add("mapping", "parent map has " + std::to_string(parent.size()) +
                                  " entries for " + std::to_string(fine.num_cells()) +
                                  " fine cells");
        return report;
    }

    // Membership and the fixed-cell carry-through.
    std::vector<double> member_area(coarse.num_cells(), 0.0);
    std::vector<std::size_t> member_count(coarse.num_cells(), 0);
    for (cell_id i = 0; i < fine.num_cells(); ++i) {
        const cell& fc = fine.cell_at(i);
        if (parent[i] >= coarse.num_cells()) {
            report.add("cell " + fc.name, "parent index " + std::to_string(parent[i]) +
                                              " out of range");
            continue;
        }
        member_area[parent[i]] += fc.area();
        ++member_count[parent[i]];
        const cell& cc = coarse.cell_at(parent[i]);
        if ((fc.fixed || fc.kind == cell_kind::pad) &&
            (!cc.fixed || cc.kind != fc.kind || !(cc.position == fc.position) ||
             cc.width != fc.width || cc.height != fc.height)) {
            report.add("cell " + fc.name,
                       "fixed cell was merged or altered by coarsening");
        }
    }
    constexpr double kRelTol = 1e-9;
    for (cell_id c = 0; c < coarse.num_cells(); ++c) {
        const cell& cc = coarse.cell_at(c);
        if (member_count[c] == 0) {
            report.add("cell " + cc.name, "coarse cell has no members");
            continue;
        }
        if ((cc.fixed || cc.kind == cell_kind::pad) && member_count[c] != 1) {
            report.add("cell " + cc.name,
                       "fixed coarse cell owns " + std::to_string(member_count[c]) +
                           " members (must be exactly 1)");
        }
        const double scale = std::max(1.0, std::abs(member_area[c]));
        if (std::abs(cc.area() - member_area[c]) > kRelTol * scale) {
            report.add("cell " + cc.name, "area " + fmt(cc.area()) +
                                              " != sum of member areas " +
                                              fmt(member_area[c]));
        }
    }
    const double fine_movable = fine.movable_area();
    const double coarse_movable = coarse.movable_area();
    if (std::abs(fine_movable - coarse_movable) >
        kRelTol * std::max(1.0, fine_movable)) {
        report.add("netlist", "movable area not conserved: fine " + fmt(fine_movable) +
                                  " vs coarse " + fmt(coarse_movable));
    }

    // Pin-count conservation: re-project every fine net independently and
    // demand the exact same net and pin totals the coarse netlist carries.
    std::size_t expected_nets = 0;
    std::size_t expected_pins = 0;
    std::unordered_set<cell_id> distinct;
    for (net_id ni = 0; ni < fine.num_nets(); ++ni) {
        distinct.clear();
        for (const pin& p : fine.net_at(ni).pins) {
            if (p.cell < parent.size()) distinct.insert(parent[p.cell]);
        }
        if (distinct.size() >= 2) {
            ++expected_nets;
            expected_pins += distinct.size();
        }
    }
    if (expected_nets != coarse.num_nets()) {
        report.add("netlist", "projected net count " + std::to_string(expected_nets) +
                                  " != coarse net count " +
                                  std::to_string(coarse.num_nets()));
    }
    if (expected_pins != coarse.num_pins()) {
        report.add("netlist", "projected pin count " + std::to_string(expected_pins) +
                                  " != coarse pin count " +
                                  std::to_string(coarse.num_pins()));
    }

    const rect fr = fine.region();
    const rect cr = coarse.region();
    if (fr.xlo != cr.xlo || fr.ylo != cr.ylo || fr.xhi != cr.xhi || fr.yhi != cr.yhi) {
        report.add("region", "coarse region differs from fine region");
    }
    if (fine.row_height() != coarse.row_height()) {
        report.add("region", "coarse row height differs from fine row height");
    }
    return report;
}

namespace {

std::atomic<bool> g_forced{false};

bool env_enabled() {
    static const bool enabled = [] {
        const char* v = std::getenv("GPF_VERIFY");
        return v != nullptr && *v != '\0' && std::string(v) != "0";
    }();
    return enabled;
}

} // namespace

bool verify_checkpoints_enabled() {
    return g_forced.load(std::memory_order_relaxed) || env_enabled();
}

void force_verify_checkpoints(bool on) {
    g_forced.store(on, std::memory_order_relaxed);
}

void checkpoint_global_placement(const netlist& nl, const placement& pl,
                                 const std::string& stage, const verify_options& opt) {
    if (!verify_checkpoints_enabled()) return;
    verify_global_placement(nl, pl, opt).require(stage);
}

void checkpoint_legal_placement(const netlist& nl, const placement& pl,
                                const std::string& stage, const verify_options& opt) {
    if (!verify_checkpoints_enabled()) return;
    verify_legal_placement(nl, pl, opt).require(stage);
}

} // namespace gpf
