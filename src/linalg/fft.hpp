// Radix-4/radix-2 complex FFT and 2-D real convolution on wrap-around
// (cyclic) grids, with runtime-dispatched SIMD butterflies.
//
// The force field of eq. (9) in the paper is a discrete convolution of the
// density map with the free-space Green's-function kernel; with m² grid
// bins the FFT evaluates it in O(m² log m) instead of O(m⁴).
//
// Butterfly passes run through the kernel table of util/simd.hpp: stages
// are fused pairwise into radix-4 passes (one complex multiply saved per
// four outputs and half the memory sweeps), with a single radix-2 pass
// first when log2(n) is odd. Every ISA produces bitwise-identical output
// (see the determinism contract in util/simd.hpp), so transforms — and
// hence placements — are reproducible across GPF_SIMD as well as
// GPF_THREADS.
//
// The "same"-shaped linear convolution with a centered (2n-1)-tap kernel
// is evaluated *exactly* on a cyclic grid of next_power_of_two(2n-1) per
// dimension — 2n for power-of-two n — by scattering kernel tap m to index
// (m mod P): because P >= 2n-1, no aliased tap lands on an offset the
// linear convolution uses, and output (i, j) reads directly at padded
// position (i, j). This halves each padded dimension relative to the
// classic 4n zero-padding (a 4x smaller transform area).
//
// Transform plans (bit-reversal permutation and per-stage twiddle tables)
// are cached per size in a process-wide table; see fft_plan_cache_stats()
// for the cache's observability hook and the locking contract below.
// `spectral_convolver` goes further and caches the *kernel spectra* of the
// force-field convolution across placement transformations (DESIGN.md §7).
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace gpf {

/// True when n is a power of two (n >= 1).
bool is_power_of_two(std::size_t n);

/// Smallest power of two >= n (n >= 1).
std::size_t next_power_of_two(std::size_t n);

/// In-place iterative FFT (radix-4 with one radix-2 stage for odd log2).
/// a.size() must be a power of two. The inverse transform includes the
/// 1/N normalization. Twiddle factors come from the per-size plan cache;
/// inputs must be finite.
void fft(std::vector<std::complex<double>>& a, bool inverse);

/// Pointer variant of fft() for transforming a slice in place (n must be a
/// power of two).
void fft(std::complex<double>* a, std::size_t n, bool inverse);

/// In-place 2-D FFT over a row-major n0 x n1 array (both powers of two).
/// Row and column passes run on the worker pool; results are bitwise
/// identical for any thread count (each 1-D transform owns its slice).
void fft_2d(std::vector<std::complex<double>>& a, std::size_t n0, std::size_t n1,
            bool inverse);

/// Counters of the process-wide FFT plan cache (test/observability hook).
///
/// The cache is bounded by construction — one slot per power-of-two size
/// up to 2^40, never evicted — and lock-free on the hit path: each slot is
/// an atomic pointer published with release ordering after the plan is
/// fully built. Only the first request of each size takes the build mutex;
/// concurrent first requests of *different* sizes serialize on it but
/// every later lookup is a single acquire load. Counter updates are
/// relaxed atomics; only the thread that actually builds a plan counts a
/// miss (a lookup that loses the build race counts a hit), so the totals
/// satisfy misses == plans and hits + misses == lookups even under
/// concurrent first requests — though a reader racing a builder may
/// transiently observe `misses` ahead of `plans`/`bytes`.
struct fft_cache_stats {
    std::size_t hits = 0;   ///< lookups served from an already-built plan
    std::size_t misses = 0; ///< lookups that built a plan (== plans ever built)
    std::size_t plans = 0;  ///< distinct sizes currently cached
    std::size_t bytes = 0;  ///< approximate resident bytes of all plans
};

/// Snapshot of the plan-cache counters since process start.
fft_cache_stats fft_plan_cache_stats();

/// True when spectral_convolver runs its fused forward path (the default):
/// the forward column transform, the pointwise kernel product and both
/// inverse column transforms run as one cache-resident sweep per column
/// batch, and the affine density pack happens inside the r2c row gather.
/// The staged (PR-9) path remains available — GPF_FUSED=0 or
/// set_spectral_fused(false) — and produces bitwise identical results;
/// the equivalence property suite locks that in.
bool spectral_fused_enabled();

/// Override the fused-forward toggle (tests/tools). Must not race a
/// running convolution, same contract as simd_set_isa().
void set_spectral_fused(bool on);

/// Packed real-to-complex 2-D FFT of a row-major n0 x n1 real array (both
/// powers of two). Returns the half spectrum: n0 x (n1/2 + 1) complex
/// values, row-major with row stride n1/2 + 1. The dropped columns are
/// redundant by Hermitian symmetry of real input,
///
///   F[i, j] = conj(F[(n0 - i) mod n0, (n1 - j) mod n1]),
///
/// so column j > n1/2 is recoverable as conj(F[(n0-i) mod n0, n1-j]).
/// Rows transform pairwise through one complex FFT each (the classic
/// two-reals-in-one-complex trick), then the n1/2 + 1 retained columns
/// get a full complex pass — about half the transform work of a complex
/// 2-D FFT of the same grid.
std::vector<std::complex<double>> fft_2d_r2c(const std::vector<double>& data,
                                             std::size_t n0, std::size_t n1);

/// Inverse of fft_2d_r2c: consumes an n0 x (n1/2 + 1) half spectrum
/// (modified in place as scratch) and returns the n0 x n1 real array,
/// normalized by 1/(n0·n1). The input must carry the Hermitian symmetry
/// of a real signal (as fft_2d_r2c output does); the reconstruction
/// mirrors columns j > n1/2 from the retained half before each packed
/// row inverse, so no full-width spectrum is ever materialized.
std::vector<double> fft_2d_c2r(std::vector<std::complex<double>>& half,
                               std::size_t n0, std::size_t n1);

/// Linear (non-cyclic) 2-D convolution of a row-major n0 x n1 real array
/// with a centered kernel of size (2*n0-1) x (2*n1-1):
///
///   out(i,j) = sum_{k,l} data(k,l) * kernel(i-k + n0-1, j-l + n1-1)
///
/// Kernel index (n0-1, n1-1) is the zero-offset tap. Output has the same
/// n0 x n1 shape as data. Evaluated on the wrap-around grid described in
/// the header comment.
std::vector<double> convolve_2d(const std::vector<double>& data, std::size_t n0,
                                std::size_t n1, const std::vector<double>& kernel);

/// Iteration-persistent spectral engine for the pair of "same"-shaped
/// linear convolutions the force field needs each placement transformation
/// (data ⊛ kernel_x, data ⊛ kernel_y with one shared real input).
///
/// Construction pays the kernel cost exactly once: both centered
/// (2n0-1) x (2n1-1) kernels are scattered wrap-around (tap offset m to
/// index m mod P per dimension) into one cyclic complex grid as kx + i·ky,
/// forward-transformed in a single 2-D FFT, and split back into the two
/// real-kernel *half spectra* Kx, Ky (columns 0..p1/2 only — the rest is
/// the conjugate mirror, Hermitian symmetry of real input).
///
/// convolve_pair() then runs entirely on the half grid:
///   - forward r2c of the real data: packed-pair row transforms (two real
///     rows per complex length-p1 FFT) over the n0 data rows only, then a
///     column pass over just the p1/2 + 1 retained columns,
///   - one dual Hermitian pointwise product (SIMD cmul_pair): D·Kx and
///     D·Ky in a single sweep over the shared data spectrum,
///   - c2r inverse: a half-width column pass per product, then one packed
///     complex row inverse per *output* row (n0 rows, not p0), with
///     Re = data ⊛ kernel_x and Im = data ⊛ kernel_y riding the two
///     channels.
/// Relative to the PR-8 full-spectrum path this removes ~30% of the
/// transform work and halves the pointwise memory traffic.
///
/// All scratch buffers are reused across calls; the padding rows of the
/// row-spectrum scratch are zeroed once at construction and never
/// rewritten. The arithmetic schedule depends only on (n0, n1), so
/// results are bitwise identical for any thread count, and a fresh
/// convolver produces bitwise identical output to a reused one — the
/// cache contract tests/test_transform_cache.cpp locks in.
class spectral_convolver {
public:
    /// kernel_x / kernel_y: centered (2n0-1) x (2n1-1) taps, laid out as in
    /// convolve_2d.
    spectral_convolver(std::size_t n0, std::size_t n1,
                       const std::vector<double>& kernel_x,
                       const std::vector<double>& kernel_y);

    std::size_t n0() const { return n0_; }
    std::size_t n1() const { return n1_; }

    /// out_x = data ⊛ kernel_x, out_y = data ⊛ kernel_y ("same" shape,
    /// n0 x n1). data.size() must be n0 * n1. Outputs are resized.
    void convolve_pair(const std::vector<double>& data, std::vector<double>& out_x,
                       std::vector<double>& out_y);

    /// Convolves the affinely transformed grid (data[i] + shift) * scale
    /// without materializing it: the transform is applied inside the r2c
    /// row gather, so the density map feeds the forward transform directly
    /// (no intermediate real grid, no read-back sweep). Because IEEE
    /// a - b == a + (-b) bit for bit, convolve_pair_affine(demand,
    /// -supply, area) is bitwise identical to convolve_pair of the
    /// explicitly assembled (demand - supply) * area grid.
    void convolve_pair_affine(const std::vector<double>& data, double shift,
                              double scale, std::vector<double>& out_x,
                              std::vector<double>& out_y);

private:
    void run(const double* data, bool affine, double shift, double scale,
             std::vector<double>& out_x, std::vector<double>& out_y);

    std::size_t n0_, n1_; ///< data shape
    std::size_t p0_, p1_; ///< cyclic transform shape (powers of two)
    std::size_t hw_;      ///< half-spectrum width, p1/2 + 1
    std::vector<std::complex<double>> spec_x_;   ///< Kx half spectrum, cached
    std::vector<std::complex<double>> spec_y_;   ///< Ky half spectrum, cached
    std::vector<std::complex<double>> spec_xb_;  ///< Kx, batch-interleaved (fused)
    std::vector<std::complex<double>> spec_yb_;  ///< Ky, batch-interleaved (fused)
    std::vector<std::complex<double>> col_tw4_fwd_; ///< column twiddles ×4 lanes
    std::vector<std::complex<double>> col_tw4_inv_; ///< column twiddles ×4 lanes
    std::vector<std::complex<double>> row_spec_; ///< r2c row spectra scratch
    std::vector<std::complex<double>> spec_d_;   ///< data spectrum → D·Kx
    std::vector<std::complex<double>> spec_q_;   ///< D·Ky product spectrum
};

} // namespace gpf
