// Unit tests of the SIMD dispatch layer (util/simd.hpp): table
// availability, the GPF_SIMD-style override hook, and the scalar
// reference kernels against straightforward loop implementations. The
// cross-ISA bitwise sweep lives in the property binary
// (test_simd_equivalence.cpp).
#include <gtest/gtest.h>

#include <complex>
#include <cstring>
#include <vector>

#include "util/prng.hpp"
#include "util/simd.hpp"

namespace gpf {
namespace {

class scoped_isa {
public:
    explicit scoped_isa(simd_isa isa) : previous_(simd_active_isa()) {
        EXPECT_TRUE(simd_set_isa(isa));
    }
    ~scoped_isa() { simd_set_isa(previous_); }

private:
    simd_isa previous_;
};

TEST(Simd, ScalarTableAlwaysAvailableAndComplete) {
    const simd_kernels* table = simd_kernels_for(simd_isa::scalar);
    ASSERT_NE(table, nullptr);
    EXPECT_EQ(table->isa, simd_isa::scalar);
    EXPECT_STREQ(table->name, "scalar");
    EXPECT_NE(table->axpy, nullptr);
    EXPECT_NE(table->xpby, nullptr);
    EXPECT_NE(table->accumulate, nullptr);
    EXPECT_NE(table->scale, nullptr);
    EXPECT_NE(table->dot, nullptr);
    EXPECT_NE(table->dot_gather, nullptr);
    EXPECT_NE(table->add_scalar, nullptr);
    EXPECT_NE(table->cmul, nullptr);
    EXPECT_NE(table->cmul_pair, nullptr);
    EXPECT_NE(table->fft_radix2, nullptr);
    EXPECT_NE(table->fft_radix4, nullptr);
}

TEST(Simd, DetectedTableIsComplete) {
    const simd_kernels* table = simd_kernels_for(simd_detected_isa());
    ASSERT_NE(table, nullptr);
    EXPECT_EQ(table->isa, simd_detected_isa());
    EXPECT_NE(table->dot, nullptr);
    EXPECT_NE(table->fft_radix4, nullptr);
}

TEST(Simd, SetIsaSwapsAndRejectsUnsupported) {
    const simd_isa original = simd_active_isa();
    {
        scoped_isa guard(simd_isa::scalar);
        EXPECT_EQ(simd_active_isa(), simd_isa::scalar);
        EXPECT_EQ(simd().isa, simd_isa::scalar);
    }
    EXPECT_EQ(simd_active_isa(), original);

    // Vector ISAs the build or CPU lacks must be rejected without
    // disturbing the active table (x86-64 may carry both avx2 and avx512;
    // neon is aarch64-only, so at least one of these always exercises the
    // rejection path).
    for (const simd_isa isa :
         {simd_isa::avx2, simd_isa::avx512, simd_isa::neon}) {
        if (simd_kernels_for(isa) == nullptr) {
            EXPECT_FALSE(simd_set_isa(isa));
            EXPECT_EQ(simd_active_isa(), original);
        }
    }
}

TEST(Simd, IsaNames) {
    EXPECT_STREQ(simd_isa_name(simd_isa::scalar), "scalar");
    EXPECT_STREQ(simd_isa_name(simd_isa::avx2), "avx2");
    EXPECT_STREQ(simd_isa_name(simd_isa::avx512), "avx512");
    EXPECT_STREQ(simd_isa_name(simd_isa::neon), "neon");
}

TEST(Simd, Avx512TableCompleteWhenAvailable) {
    const simd_kernels* table = simd_kernels_for(simd_isa::avx512);
    if (table == nullptr) {
        GTEST_SKIP() << "avx512 tier not compiled in or not supported";
    }
    EXPECT_EQ(table->isa, simd_isa::avx512);
    EXPECT_STREQ(table->name, "avx512");
    EXPECT_NE(table->axpy, nullptr);
    EXPECT_NE(table->xpby, nullptr);
    EXPECT_NE(table->accumulate, nullptr);
    EXPECT_NE(table->scale, nullptr);
    EXPECT_NE(table->dot, nullptr);
    EXPECT_NE(table->dot_gather, nullptr);
    EXPECT_NE(table->add_scalar, nullptr);
    EXPECT_NE(table->cmul, nullptr);
    EXPECT_NE(table->cmul_pair, nullptr);
    EXPECT_NE(table->fft_radix2, nullptr);
    EXPECT_NE(table->fft_radix4, nullptr);
    // An available avx512 tier implies the avx2 tier (the 512-bit kernels
    // delegate short blocks to the shared 256-bit bodies).
    EXPECT_NE(simd_kernels_for(simd_isa::avx2), nullptr);
}

TEST(Simd, ParseEnvRecognizesEveryTier) {
    for (const auto& [text, isa] :
         {std::pair<const char*, simd_isa>{"scalar", simd_isa::scalar},
          {"avx2", simd_isa::avx2},
          {"avx512", simd_isa::avx512},
          {"neon", simd_isa::neon}}) {
        const simd_env_request req = simd_parse_env(text);
        EXPECT_TRUE(req.known) << text;
        EXPECT_FALSE(req.native) << text;
        EXPECT_EQ(req.isa, isa) << text;
    }
}

TEST(Simd, ParseEnvDefaultsToNative) {
    for (const char* text : {static_cast<const char*>(nullptr), "", "native"}) {
        const simd_env_request req = simd_parse_env(text);
        EXPECT_TRUE(req.known);
        EXPECT_TRUE(req.native);
    }
}

TEST(Simd, ParseEnvRejectsUnknownValues) {
    // Unknown values must come back flagged (the resolver warns and falls
    // back to scalar) rather than silently mapping to some tier.
    for (const char* text : {"avx", "AVX2", "sse2", "avx-512", "1", "best"}) {
        const simd_env_request req = simd_parse_env(text);
        EXPECT_FALSE(req.known) << text;
        EXPECT_FALSE(req.native) << text;
        EXPECT_EQ(req.isa, simd_isa::scalar) << text;
    }
}

TEST(Simd, ElementwiseKernelsMatchLoops) {
    prng rng(7);
    const std::size_t n = 1003; // odd: exercises vector tails
    std::vector<double> x(n), y(n), z(n), expected(n);
    for (std::size_t i = 0; i < n; ++i) {
        x[i] = rng.next_range(-2.0, 2.0);
        y[i] = rng.next_range(-2.0, 2.0);
        z[i] = rng.next_range(-2.0, 2.0);
    }
    const simd_kernels& kern = simd();

    std::vector<double> got = y;
    for (std::size_t i = 0; i < n; ++i) expected[i] = y[i] + 1.5 * x[i];
    kern.axpy(1.5, x.data(), got.data(), n);
    EXPECT_EQ(std::memcmp(got.data(), expected.data(), n * sizeof(double)), 0);

    got = y;
    for (std::size_t i = 0; i < n; ++i) expected[i] = z[i] + 0.75 * y[i];
    kern.xpby(z.data(), 0.75, got.data(), n);
    EXPECT_EQ(std::memcmp(got.data(), expected.data(), n * sizeof(double)), 0);

    got = y;
    for (std::size_t i = 0; i < n; ++i) expected[i] = y[i] + x[i];
    kern.accumulate(x.data(), got.data(), n);
    EXPECT_EQ(std::memcmp(got.data(), expected.data(), n * sizeof(double)), 0);

    got = y;
    for (std::size_t i = 0; i < n; ++i) expected[i] = y[i] * -0.3;
    kern.scale(got.data(), -0.3, n);
    EXPECT_EQ(std::memcmp(got.data(), expected.data(), n * sizeof(double)), 0);

    got = y;
    for (std::size_t i = 0; i < n; ++i) expected[i] = y[i] + 2.25;
    kern.add_scalar(got.data(), 2.25, n);
    EXPECT_EQ(std::memcmp(got.data(), expected.data(), n * sizeof(double)), 0);
}

TEST(Simd, ReductionsUseFixedLaneOrder) {
    prng rng(13);
    const std::size_t n = 517;
    std::vector<double> a(n), b(n);
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) {
        a[i] = rng.next_range(-1.0, 1.0);
        b[i] = rng.next_range(-1.0, 1.0);
        idx[i] = rng.next_below(n);
    }

    // The documented reduction shape: 4 logical lanes over the 4-aligned
    // prefix, merged (l0+l2)+(l1+l3), serial tail.
    const auto reference = [&](const auto& term) {
        double l0 = 0, l1 = 0, l2 = 0, l3 = 0;
        const std::size_t m = n & ~std::size_t{3};
        std::size_t i = 0;
        for (; i < m; i += 4) {
            l0 += term(i);
            l1 += term(i + 1);
            l2 += term(i + 2);
            l3 += term(i + 3);
        }
        double acc = (l0 + l2) + (l1 + l3);
        for (; i < n; ++i) acc += term(i);
        return acc;
    };

    const double want_dot = reference([&](std::size_t i) { return a[i] * b[i]; });
    const double got_dot = simd().dot(a.data(), b.data(), n);
    EXPECT_EQ(std::memcmp(&got_dot, &want_dot, sizeof(double)), 0);

    const double want_gather =
        reference([&](std::size_t i) { return a[i] * b[idx[i]]; });
    const double got_gather = simd().dot_gather(a.data(), idx.data(), b.data(), n);
    EXPECT_EQ(std::memcmp(&got_gather, &want_gather, sizeof(double)), 0);
}

TEST(Simd, ComplexMultiplyMatchesExplicitForm) {
    prng rng(21);
    const std::size_t n = 129;
    std::vector<std::complex<double>> w(n), s(n), expected(n);
    for (std::size_t i = 0; i < n; ++i) {
        w[i] = {rng.next_range(-1.0, 1.0), rng.next_range(-1.0, 1.0)};
        s[i] = {rng.next_range(-1.0, 1.0), rng.next_range(-1.0, 1.0)};
        expected[i] = {w[i].real() * s[i].real() - w[i].imag() * s[i].imag(),
                       w[i].real() * s[i].imag() + w[i].imag() * s[i].real()};
    }
    simd().cmul(w.data(), s.data(), n);
    EXPECT_EQ(
        std::memcmp(w.data(), expected.data(), n * sizeof(std::complex<double>)),
        0);
}

TEST(Simd, DualComplexMultiplyMatchesExplicitForm) {
    // cmul_pair shares one read of w between two products: q = w·t, then
    // w = w·s — both bitwise equal to the explicit forms (the order
    // matters: q must see the *original* w, not w·s).
    prng rng(23);
    const std::size_t n = 129; // odd: exercises vector tails
    std::vector<std::complex<double>> w(n), s(n), t(n), q(n);
    std::vector<std::complex<double>> want_w(n), want_q(n);
    for (std::size_t i = 0; i < n; ++i) {
        w[i] = {rng.next_range(-1.0, 1.0), rng.next_range(-1.0, 1.0)};
        s[i] = {rng.next_range(-1.0, 1.0), rng.next_range(-1.0, 1.0)};
        t[i] = {rng.next_range(-1.0, 1.0), rng.next_range(-1.0, 1.0)};
        want_q[i] = {w[i].real() * t[i].real() - w[i].imag() * t[i].imag(),
                     w[i].real() * t[i].imag() + w[i].imag() * t[i].real()};
        want_w[i] = {w[i].real() * s[i].real() - w[i].imag() * s[i].imag(),
                     w[i].real() * s[i].imag() + w[i].imag() * s[i].real()};
    }
    simd().cmul_pair(w.data(), q.data(), s.data(), t.data(), n);
    EXPECT_EQ(
        std::memcmp(q.data(), want_q.data(), n * sizeof(std::complex<double>)),
        0);
    EXPECT_EQ(
        std::memcmp(w.data(), want_w.data(), n * sizeof(std::complex<double>)),
        0);
}

} // namespace
} // namespace gpf
