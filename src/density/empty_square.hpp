// The paper's stopping criterion (section 4.2): iterate until "there exists
// no empty square within the placement area which is larger than four times
// the average area of a cell".
//
// Implemented as a largest-square-of-empty-bins dynamic program over the
// demand grid. A bin counts as empty when its demand density is below
// `empty_threshold` (cells only; the uniform supply term is irrelevant
// here). With the grid's near-square bins the bin-square side converts to
// layout units via the geometric mean of the bin dimensions.
#pragma once

#include <cstddef>

#include "density/density_map.hpp"

namespace gpf {

/// Side length (layout units) of the largest empty axis-aligned square of
/// bins. Returns 0 when no bin is empty.
double largest_empty_square_side(const density_map& density,
                                 double empty_threshold = 0.05);

/// True when the paper's criterion is met: the largest empty square's area
/// is at most `factor` (default 4) times the average movable-cell area.
bool placement_is_spread(const density_map& density, double average_cell_area,
                         double factor = 4.0, double empty_threshold = 0.05);

} // namespace gpf
