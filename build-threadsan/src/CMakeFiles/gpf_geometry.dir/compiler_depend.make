# Empty compiler generated dependencies file for gpf_geometry.
# This may be replaced when dependencies are built.
