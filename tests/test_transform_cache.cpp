// The cache contract of the transformation-loop hot path (DESIGN.md §7):
// every iteration-persistent cache — the spectral_convolver's kernel
// spectra, the quadratic system's symbolic CSR pattern, the placer's
// density / calculator / workspace reuse — must be invisible in the
// results. A reused object produces BITWISE identical output to a freshly
// constructed one, and the full placer produces bitwise identical
// placements with iteration_cache on or off, at any thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "gpf.hpp"

namespace gpf {
namespace {

class scoped_threads {
public:
    explicit scoped_threads(std::size_t n)
        : previous_(thread_pool::instance().num_threads()) {
        thread_pool::instance().set_num_threads(n);
    }
    ~scoped_threads() { thread_pool::instance().set_num_threads(previous_); }

private:
    std::size_t previous_;
};

netlist test_circuit(std::size_t cells, std::uint64_t seed) {
    generator_options opt;
    opt.num_cells = cells;
    opt.num_nets = cells + cells / 6;
    opt.num_rows = 8;
    opt.num_pads = 24;
    opt.seed = seed;
    return generate_circuit(opt);
}

placement random_placement(const netlist& nl, std::uint64_t seed) {
    prng rng(seed);
    placement pl = nl.initial_placement();
    const rect r = nl.region();
    for (cell_id i = 0; i < nl.num_cells(); ++i) {
        if (nl.cell_at(i).fixed) continue;
        pl[i] = point(rng.next_range(r.xlo, r.xhi), rng.next_range(r.ylo, r.yhi));
    }
    return pl;
}

class TransformCacheProperties : public ::testing::TestWithParam<std::uint64_t> {};

// ---------------------------------------------------------------------------
// spectral_convolver: reused == fresh (bitwise), and both match convolve_2d
// ---------------------------------------------------------------------------

TEST_P(TransformCacheProperties, SpectralConvolverReuseIsBitwiseIdentical) {
    const std::uint64_t seed = GetParam();
    prng rng(seed);
    const std::size_t n0 = 4 + rng.next_below(21);
    const std::size_t n1 = 4 + rng.next_below(21);
    const std::size_t ksize = (2 * n0 - 1) * (2 * n1 - 1);
    std::vector<double> kx(ksize), ky(ksize);
    for (double& v : kx) v = rng.next_range(-1.0, 1.0);
    for (double& v : ky) v = rng.next_range(-1.0, 1.0);

    spectral_convolver reused(n0, n1, kx, ky);
    std::vector<double> rx, ry, fx, fy;
    for (std::size_t call = 0; call < 3; ++call) {
        std::vector<double> data(n0 * n1);
        for (double& v : data) v = rng.next_range(-2.0, 2.0);

        reused.convolve_pair(data, rx, ry);
        spectral_convolver fresh(n0, n1, kx, ky);
        fresh.convolve_pair(data, fx, fy);

        ASSERT_EQ(rx.size(), n0 * n1);
        for (std::size_t i = 0; i < n0 * n1; ++i) {
            ASSERT_EQ(rx[i], fx[i]) << "call " << call << " x index " << i;
            ASSERT_EQ(ry[i], fy[i]) << "call " << call << " y index " << i;
        }

        // Against the plain per-kernel path (different FFT packing, so
        // tolerance, not bitwise).
        const std::vector<double> ref_x = convolve_2d(data, n0, n1, kx);
        const std::vector<double> ref_y = convolve_2d(data, n0, n1, ky);
        double scale = 1.0;
        for (const double v : ref_x) scale = std::max(scale, std::abs(v));
        for (const double v : ref_y) scale = std::max(scale, std::abs(v));
        for (std::size_t i = 0; i < n0 * n1; ++i) {
            ASSERT_NEAR(rx[i], ref_x[i], 1e-11 * scale) << "x index " << i;
            ASSERT_NEAR(ry[i], ref_y[i], 1e-11 * scale) << "y index " << i;
        }
    }
}

// ---------------------------------------------------------------------------
// quadratic_system: symbolic pattern + numeric refill == fresh assembly
// ---------------------------------------------------------------------------

TEST_P(TransformCacheProperties, SystemRefillMatchesFreshAssembly) {
    const std::uint64_t seed = GetParam();
    netlist nl = test_circuit(220, seed);
    quadratic_system reused(nl);

    for (std::size_t call = 0; call < 3; ++call) {
        const placement pl = random_placement(nl, seed * 1000 + call);
        // Live net-weight change (the timing-driven weight hook does this
        // between transformations); the refill must pick it up.
        if (call == 2) nl.net_at(0).weight *= 3.5;

        reused.assemble(pl);
        quadratic_system fresh(nl);
        fresh.assemble(pl);

        const auto expect_same = [&](const std::vector<double>& a,
                                     const std::vector<double>& b, const char* what) {
            ASSERT_EQ(a.size(), b.size()) << what;
            for (std::size_t i = 0; i < a.size(); ++i) {
                ASSERT_EQ(a[i], b[i]) << what << " index " << i << " call " << call;
            }
        };
        expect_same(reused.matrix_x().values(), fresh.matrix_x().values(), "Cx");
        expect_same(reused.matrix_y().values(), fresh.matrix_y().values(), "Cy");
        expect_same(reused.rhs_x(), fresh.rhs_x(), "dx");
        expect_same(reused.rhs_y(), fresh.rhs_y(), "dy");
        expect_same(reused.diagonal_x(), fresh.diagonal_x(), "diag_x");
        expect_same(reused.diagonal_y(), fresh.diagonal_y(), "diag_y");
    }
}

TEST_P(TransformCacheProperties, CachedDiagonalMatchesMatrixDiagonal) {
    const std::uint64_t seed = GetParam();
    const netlist nl = test_circuit(180, seed);
    quadratic_system sys(nl);
    sys.assemble(random_placement(nl, seed + 7));
    const std::vector<double> dx = sys.matrix_x().diagonal();
    const std::vector<double> dy = sys.matrix_y().diagonal();
    ASSERT_EQ(dx.size(), sys.diagonal_x().size());
    for (std::size_t v = 0; v < dx.size(); ++v) {
        ASSERT_EQ(sys.diagonal_x()[v], dx[v]) << "x var " << v;
        ASSERT_EQ(sys.diagonal_y()[v], dy[v]) << "y var " << v;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformCacheProperties,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---------------------------------------------------------------------------
// Full placer: cache on == cache off, bitwise, at every thread count
// ---------------------------------------------------------------------------

placement run_placer(const netlist& nl, bool cache, bool warm_start,
                     std::size_t threads) {
    scoped_threads guard(threads);
    placer_options opt;
    opt.max_iterations = 12;
    opt.iteration_cache = cache;
    opt.warm_start_cg = warm_start;
    placer p(nl, opt);
    return p.run();
}

TEST(TransformCache, PlacerBitwiseIdenticalCachedVsUncachedAcrossThreads) {
    const netlist nl = test_circuit(400, 2024);
    const placement reference = run_placer(nl, /*cache=*/true, false, 1);
    ASSERT_EQ(reference.size(), nl.num_cells());
    for (const std::size_t t : {1, 2, 4, 8}) {
        for (const bool cache : {true, false}) {
            const placement pl = run_placer(nl, cache, false, t);
            ASSERT_EQ(pl.size(), reference.size());
            for (std::size_t i = 0; i < pl.size(); ++i) {
                ASSERT_EQ(pl[i].x, reference[i].x)
                    << "cell " << i << " cache=" << cache << " threads=" << t;
                ASSERT_EQ(pl[i].y, reference[i].y)
                    << "cell " << i << " cache=" << cache << " threads=" << t;
            }
        }
    }
}

TEST(TransformCache, WarmStartIsDeterministicAndCloseToColdStart) {
    const netlist nl = test_circuit(400, 515);
    const placement cold = run_placer(nl, true, /*warm_start=*/false, 1);
    const placement warm1 = run_placer(nl, true, /*warm_start=*/true, 1);
    // Deterministic: any thread count reproduces the warm-start result
    // bitwise (the trajectory differs from cold start, not between runs).
    for (const std::size_t t : {2, 4, 8}) {
        const placement warm = run_placer(nl, true, true, t);
        ASSERT_EQ(warm.size(), warm1.size());
        for (std::size_t i = 0; i < warm.size(); ++i) {
            ASSERT_EQ(warm[i].x, warm1[i].x) << "cell " << i << " threads=" << t;
            ASSERT_EQ(warm[i].y, warm1[i].y) << "cell " << i << " threads=" << t;
        }
    }
    // Quality: warm starting accelerates CG, it must not change where the
    // algorithm goes. Same iteration count, so compare final wirelength.
    const double hpwl_cold = total_hpwl(nl, cold);
    const double hpwl_warm = total_hpwl(nl, warm1);
    EXPECT_NEAR(hpwl_warm, hpwl_cold, 0.05 * hpwl_cold);
}

// ---------------------------------------------------------------------------
// Profiler smoke
// ---------------------------------------------------------------------------

TEST(TransformCache, ProfilerCollectsPhaseSamples) {
    profiler& prof = profiler::instance();
    const bool was_enabled = prof.enabled();
    prof.set_enabled(true);
    prof.reset();

    const netlist nl = test_circuit(200, 99);
    placer_options opt;
    opt.max_iterations = 3;
    opt.min_iterations = 3;
    placer p(nl, opt);
    p.run();

    EXPECT_GE(prof.transforms(), 3u);
    EXPECT_GT(prof.calls(profile_phase::assemble), 0u);
    EXPECT_GT(prof.calls(profile_phase::density), 0u);
    EXPECT_GT(prof.calls(profile_phase::force_field), 0u);
    EXPECT_GT(prof.calls(profile_phase::solve), 0u);
    EXPECT_GT(prof.calls(profile_phase::spread_check), 0u);
    EXPECT_GT(prof.total_cg_x() + prof.total_cg_y(), 0u);
    EXPECT_FALSE(prof.summary().empty());

    prof.reset();
    prof.set_enabled(was_enabled);
}

} // namespace
} // namespace gpf
