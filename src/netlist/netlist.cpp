#include "netlist/netlist.hpp"

#include <cmath>
#include <unordered_set>

#include "util/check.hpp"

namespace gpf {

cell_id netlist::add_cell(cell c) {
    GPF_CHECK_MSG(c.width > 0.0 && c.height > 0.0,
                  "cell '" << c.name << "' must have positive dimensions");
    if (c.kind == cell_kind::pad) c.fixed = true;
    cells_.push_back(std::move(c));
    adjacency_valid_ = false;
    return static_cast<cell_id>(cells_.size() - 1);
}

net_id netlist::add_net(net n) {
    for (const pin& p : n.pins) {
        GPF_CHECK_MSG(p.cell < cells_.size(),
                      "net '" << n.name << "' references unknown cell " << p.cell);
    }
    if (n.driver != no_driver) {
        GPF_CHECK_MSG(n.driver < n.pins.size(),
                      "net '" << n.name << "' driver index out of range");
    }
    nets_.push_back(std::move(n));
    adjacency_valid_ = false;
    return static_cast<net_id>(nets_.size() - 1);
}

std::size_t netlist::num_pins() const {
    std::size_t count = 0;
    for (const net& n : nets_) count += n.pins.size();
    return count;
}

const cell& netlist::cell_at(cell_id id) const {
    GPF_CHECK(id < cells_.size());
    return cells_[id];
}

cell& netlist::cell_at(cell_id id) {
    GPF_CHECK(id < cells_.size());
    return cells_[id];
}

const net& netlist::net_at(net_id id) const {
    GPF_CHECK(id < nets_.size());
    return nets_[id];
}

net& netlist::net_at(net_id id) {
    GPF_CHECK(id < nets_.size());
    return nets_[id];
}

std::size_t netlist::num_rows() const {
    if (row_height_ <= 0.0) return 0;
    return static_cast<std::size_t>(std::floor(region_.height() / row_height_ + 0.5));
}

double netlist::movable_area() const {
    double area = 0.0;
    for (const cell& c : cells_) {
        if (!c.fixed) area += c.area();
    }
    return area;
}

double netlist::core_cell_area() const {
    double area = 0.0;
    for (const cell& c : cells_) {
        if (c.kind != cell_kind::pad) area += c.area();
    }
    return area;
}

double netlist::utilization() const {
    const double region_area = region_.area();
    return region_area > 0.0 ? movable_area() / region_area : 0.0;
}

std::size_t netlist::num_movable() const {
    std::size_t count = 0;
    for (const cell& c : cells_) {
        if (!c.fixed) ++count;
    }
    return count;
}

std::size_t netlist::num_fixed() const { return cells_.size() - num_movable(); }

const std::vector<std::vector<net_id>>& netlist::cell_nets() const {
    if (!adjacency_valid_) {
        cell_nets_.assign(cells_.size(), {});
        for (net_id ni = 0; ni < nets_.size(); ++ni) {
            for (const pin& p : nets_[ni].pins) {
                // A cell can appear on the same net through several pins;
                // record the net once per cell.
                auto& list = cell_nets_[p.cell];
                if (list.empty() || list.back() != ni) list.push_back(ni);
            }
        }
        adjacency_valid_ = true;
    }
    return cell_nets_;
}

void netlist::invalidate_adjacency() { adjacency_valid_ = false; }

placement netlist::initial_placement() const {
    placement pl(cells_.size());
    for (std::size_t i = 0; i < cells_.size(); ++i) pl[i] = cells_[i].position;
    return pl;
}

placement netlist::centered_placement() const {
    placement pl(cells_.size());
    const point c = region_.center();
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        pl[i] = cells_[i].fixed ? cells_[i].position : c;
    }
    return pl;
}

void netlist::commit_placement(const placement& pl) {
    GPF_CHECK(pl.size() == cells_.size());
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        if (!cells_[i].fixed) cells_[i].position = pl[i];
    }
}

void netlist::validate() const {
    GPF_CHECK_MSG(!region_.empty(), "placement region is empty");
    GPF_CHECK_MSG(row_height_ > 0.0, "row height must be positive");

    for (std::size_t i = 0; i < cells_.size(); ++i) {
        const cell& c = cells_[i];
        GPF_CHECK_MSG(c.width > 0.0 && c.height > 0.0,
                      "cell '" << c.name << "' has non-positive dimensions");
        if (c.kind == cell_kind::pad) {
            GPF_CHECK_MSG(c.fixed, "pad '" << c.name << "' must be fixed");
        }
    }

    for (const net& n : nets_) {
        std::unordered_set<cell_id> seen;
        for (const pin& p : n.pins) {
            GPF_CHECK_MSG(p.cell < cells_.size(),
                          "net '" << n.name << "' references unknown cell");
            GPF_CHECK_MSG(seen.insert(p.cell).second,
                          "net '" << n.name << "' has duplicate pin on cell "
                                  << cells_[p.cell].name);
        }
        if (n.driver != no_driver) {
            GPF_CHECK_MSG(n.driver < n.pins.size(),
                          "net '" << n.name << "' driver index out of range");
        }
        GPF_CHECK_MSG(n.weight > 0.0, "net '" << n.name << "' has non-positive weight");
    }
}

point pin_position(const netlist& nl, const placement& pl, const pin& p) {
    GPF_CHECK(p.cell < pl.size());
    static_cast<void>(nl);
    return pl[p.cell] + p.offset;
}

} // namespace gpf
