// Bookshelf-style interchange (.nodes / .nets / .pl / .scl).
//
// Lets real benchmark data (e.g. actual MCNC/Bookshelf archives) be dropped
// into the harness in place of the synthetic suite, and lets placements be
// exported to other tools. The writer emits standard UCLA Bookshelf
// headers; the reader accepts the writer's output plus the common layout
// variations (comments, blank lines, flexible whitespace). Cell kinds are
// reconstructed on read: `terminal` nodes become pads, movable nodes taller
// than the row height become blocks.
#pragma once

#include <string>

#include "netlist/netlist.hpp"
#include "util/check.hpp" // io_error / parse_error taxonomy

namespace gpf {

struct bookshelf_design {
    netlist nl;
    placement pl;
};

/// Writes base_path + ".nodes"/".nets"/".pl"/".scl".
/// Positions in the .pl file follow the Bookshelf convention (lower-left
/// corner); the in-memory model uses centers. Throws io_error — before any
/// file is created — when the placement contains a non-finite coordinate:
/// a corrupted placement must never round-trip as valid input.
void write_bookshelf(const netlist& nl, const placement& pl,
                     const std::string& base_path);

/// Reads base_path + ".nodes"/".nets"/".pl" and, when present, ".scl".
/// Throws io_error on missing files and parse_error (with file/line
/// context) on any malformed or internally inconsistent content: declared
/// counts (NumNodes/NumTerminals/NumNets/NumPins/NetDegree) that do not
/// match the actual content, unparseable numbers, duplicate node names,
/// references to unknown nodes, non-positive dimensions. The reader never
/// returns a netlist that fails netlist::validate() and never leaks a raw
/// std:: exception from numeric conversion.
bookshelf_design read_bookshelf(const std::string& base_path);

} // namespace gpf
