#include "route/congestion.hpp"

#include <algorithm>

#include "core/metrics.hpp"
#include "util/check.hpp"

namespace gpf {

std::vector<double> rudy_map(const netlist& nl, const placement& pl, const rect& region,
                             std::size_t nx, std::size_t ny,
                             const congestion_options& options) {
    GPF_CHECK(pl.size() == nl.num_cells());
    GPF_CHECK(nx >= 1 && ny >= 1);
    std::vector<double> map(nx * ny, 0.0);
    const double bin_w = region.width() / static_cast<double>(nx);
    const double bin_h = region.height() / static_cast<double>(ny);
    const double bin_area = bin_w * bin_h;

    for (const net& n : nl.nets()) {
        if (n.degree() < 2) continue;
        rect bbox;
        for (const pin& p : n.pins) bbox.expand_to(pin_position(nl, pl, p));
        // Degenerate boxes still carry wire volume; inflate to a wire width.
        const double w = std::max(bbox.width(), options.wire_width);
        const double h = std::max(bbox.height(), options.wire_width);
        const rect inflated(bbox.xlo, bbox.ylo, bbox.xlo + w, bbox.ylo + h);
        // RUDY: wire volume = HPWL · wire_width spread uniformly.
        const double volume = (w + h) * options.wire_width;
        const double density = volume / (w * h);

        const rect clipped = intersect(inflated, region);
        if (clipped.empty()) continue;
        const auto clampi = [](double v, std::size_t count) {
            return std::min(count - 1,
                            static_cast<std::size_t>(std::max(0.0, v)));
        };
        const std::size_t x0 = clampi((clipped.xlo - region.xlo) / bin_w, nx);
        const std::size_t x1 = clampi((clipped.xhi - region.xlo) / bin_w, nx);
        const std::size_t y0 = clampi((clipped.ylo - region.ylo) / bin_h, ny);
        const std::size_t y1 = clampi((clipped.yhi - region.ylo) / bin_h, ny);
        for (std::size_t ix = x0; ix <= x1; ++ix) {
            const double bxlo = region.xlo + static_cast<double>(ix) * bin_w;
            const double ox = overlap(interval(bxlo, bxlo + bin_w), clipped.x_range());
            if (ox <= 0.0) continue;
            for (std::size_t iy = y0; iy <= y1; ++iy) {
                const double bylo = region.ylo + static_cast<double>(iy) * bin_h;
                const double oy =
                    overlap(interval(bylo, bylo + bin_h), clipped.y_range());
                if (oy <= 0.0) continue;
                map[ix * ny + iy] += density * ox * oy / bin_area;
            }
        }
    }
    return map;
}

congestion_stats summarize_congestion(const std::vector<double>& map, double capacity) {
    congestion_stats s;
    for (const double v : map) {
        s.peak = std::max(s.peak, v);
        s.average += v;
        s.overflow += std::max(0.0, v - capacity);
    }
    if (!map.empty()) s.average /= static_cast<double>(map.size());
    return s;
}

placer::density_hook make_congestion_hook(const netlist& nl,
                                          congestion_options options) {
    return [&nl, options](density_map& density, const placement& pl) {
        std::vector<double> map =
            rudy_map(nl, pl, density.region(), density.nx(), density.ny(), options);
        double mean = 0.0;
        for (const double v : map) mean += v;
        mean /= static_cast<double>(map.size());
        for (double& v : map) v = std::max(0.0, v - mean);
        density.add_field(map, options.density_weight);
    };
}

} // namespace gpf
