#include "linalg/cg_solver.hpp"

#include <atomic>
#include <cmath>
#include <limits>

#include "util/check.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace gpf {

namespace {

// Minimum elements per chunk for the elementwise vector kernels; bounds
// scheduling overhead only, never the arithmetic.
constexpr std::size_t kVectorGrain = 4096;

/// Armed-fault entry gate shared by both solver variants. Returns true
/// when this solve must abort, with `result` describing the simulated
/// failure: a stalled solve (no progress, full relative residual) or a
/// NaN residual with one poisoned solution entry — the two CG failure
/// shapes the placer's recovery ladder must handle.
bool inject_cg_fault(std::vector<double>& x, cg_result& result) {
    if (fault_fires(fault_site::cg_stall)) {
        result.converged = false;
        result.iterations = 0;
        result.residual = 1.0;
        return true;
    }
    if (fault_fires(fault_site::cg_nan)) {
        const double nan = std::numeric_limits<double>::quiet_NaN();
        if (!x.empty()) x[fault_injector::instance().seed() % x.size()] = nan;
        result.converged = false;
        result.iterations = 0;
        result.residual = nan;
        return true;
    }
    return false;
}

/// Once-per-process latch of the SSOR→Jacobi downgrade warning in
/// cg_solve_operator; reset_cg_operator_ssor_warning() re-arms it.
std::atomic<bool>& ssor_operator_warned() {
    static std::atomic<bool> warned{false};
    return warned;
}

} // namespace

void reset_cg_operator_ssor_warning() {
    ssor_operator_warned().store(false, std::memory_order_relaxed);
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
    GPF_DCHECK(a.size() == b.size());
    // deterministic_sum's fixed-slab shape with the SIMD 4-lane reduction
    // inside each slab: slab boundaries and the serial slab merge depend
    // only on n, and every ISA's dot kernel reduces in the same fixed lane
    // order (util/simd.hpp) — bitwise reproducible across GPF_THREADS and
    // GPF_SIMD alike.
    const std::size_t n = a.size();
    if (n == 0) return 0.0;
    const simd_kernels& kern = simd();
    const std::size_t slabs =
        (n + deterministic_sum_slab - 1) / deterministic_sum_slab;
    if (slabs == 1) return kern.dot(a.data(), b.data(), n);
    std::vector<double> partial(slabs, 0.0);
    parallel_for(slabs, [&](std::size_t s) {
        const std::size_t begin = s * deterministic_sum_slab;
        const std::size_t end = std::min(n, begin + deterministic_sum_slab);
        partial[s] = kern.dot(a.data() + begin, b.data() + begin, end - begin);
    });
    double acc = 0.0;
    for (const double p : partial) acc += p;
    return acc;
}

double norm2(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
    GPF_DCHECK(x.size() == y.size());
    const simd_kernels& kern = simd();
    const double* xp = x.data();
    double* yp = y.data();
    parallel_for_chunks(
        x.size(),
        [&](std::size_t begin, std::size_t end) {
            kern.axpy(alpha, xp + begin, yp + begin, end - begin);
        },
        kVectorGrain);
}

namespace {

/// Applies M^{-1} r for the selected preconditioner.
class preconditioner {
public:
    preconditioner(const csr_matrix& a, const cg_options& options,
                   const std::vector<double>* cached_diagonal)
        : a_(a), kind_(options.preconditioner), omega_(options.ssor_omega) {
        if (kind_ != preconditioner_kind::none) {
            if (cached_diagonal != nullptr) {
                GPF_CHECK(cached_diagonal->size() == a.rows());
                diag_ = cached_diagonal->data();
            } else {
                diag_own_ = a.diagonal();
                diag_ = diag_own_.data();
            }
            for (std::size_t i = 0; i < a.rows(); ++i) {
                GPF_CHECK_MSG(diag_[i] > 0.0,
                              "preconditioner requires positive diagonal");
            }
        }
    }

    void apply(const std::vector<double>& r, std::vector<double>& z) const {
        switch (kind_) {
            case preconditioner_kind::none:
                z = r;
                return;
            case preconditioner_kind::jacobi:
                z.resize(r.size());
                for (std::size_t i = 0; i < r.size(); ++i) z[i] = r[i] / diag_[i];
                return;
            case preconditioner_kind::ssor:
                apply_ssor(r, z);
                return;
        }
    }

private:
    // z = (D/w + L)^{-T} D (D/w + L)^{-1} r, scaled; one forward and one
    // backward Gauss-Seidel-like sweep.
    void apply_ssor(const std::vector<double>& r, std::vector<double>& z) const {
        const std::size_t n = r.size();
        const auto& rp = a_.row_pointers();
        const auto& ci = a_.column_indices();
        const auto& v = a_.values();

        std::vector<double> y(n, 0.0);
        // forward sweep: (D/w + L) y = r
        for (std::size_t i = 0; i < n; ++i) {
            double acc = r[i];
            for (std::size_t k = rp[i]; k < rp[i + 1]; ++k) {
                if (ci[k] < i) acc -= v[k] * y[ci[k]];
            }
            y[i] = acc * omega_ / diag_[i];
        }
        // scale by D/w
        for (std::size_t i = 0; i < n; ++i) y[i] *= diag_[i] / omega_;
        // backward sweep: (D/w + U) z = y
        z.assign(n, 0.0);
        for (std::size_t ii = n; ii-- > 0;) {
            double acc = y[ii];
            for (std::size_t k = rp[ii]; k < rp[ii + 1]; ++k) {
                if (ci[k] > ii) acc -= v[k] * z[ci[k]];
            }
            z[ii] = acc * omega_ / diag_[ii];
        }
    }

    const csr_matrix& a_;
    preconditioner_kind kind_;
    double omega_;
    const double* diag_ = nullptr;  ///< caller-cached or diag_own_
    std::vector<double> diag_own_;
};

} // namespace

cg_result cg_solve(const csr_matrix& a, const std::vector<double>& b,
                   std::vector<double>& x, const cg_options& options,
                   const std::vector<double>* diagonal) {
    const std::size_t n = a.rows();
    GPF_CHECK(b.size() == n);
    if (x.size() != n) x.assign(n, 0.0);

    cg_result result;
    if (inject_cg_fault(x, result)) return result;
    const double bnorm = norm2(b);
    if (bnorm == 0.0) {
        x.assign(n, 0.0);
        result.converged = true;
        return result;
    }

    const std::size_t max_iter =
        options.max_iterations > 0 ? options.max_iterations : 10 * n + 100;
    preconditioner precond(a, options, diagonal);

    std::vector<double> r(n), z(n), p(n), ap(n);
    a.multiply(x, ap);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];

    precond.apply(r, z);
    p = z;
    double rz = dot(r, z);

    for (std::size_t it = 0; it < max_iter; ++it) {
        result.residual = norm2(r) / bnorm;
        if (!std::isfinite(result.residual)) break; // contaminated: iterating cannot recover
        if (result.residual <= options.tolerance) {
            result.converged = true;
            result.iterations = it;
            return result;
        }
        a.multiply(p, ap);
        const double pap = dot(p, ap);
        if (!(pap > 0.0)) break; // matrix not SPD along p (or NaN); bail out
        const double alpha = rz / pap;
        axpy(alpha, p, x);
        axpy(-alpha, ap, r);
        precond.apply(r, z);
        const double rz_new = dot(r, z);
        const double beta = rz_new / rz;
        rz = rz_new;
        parallel_for_chunks(
            n,
            [&](std::size_t begin, std::size_t end) {
                simd().xpby(z.data() + begin, beta, p.data() + begin, end - begin);
            },
            kVectorGrain);
        result.iterations = it + 1;
    }
    result.residual = norm2(r) / bnorm;
    result.converged = result.residual <= options.tolerance;
    return result;
}

cg_result cg_solve_operator(const linear_operator& apply,
                            const std::vector<double>& diagonal,
                            const std::vector<double>& b, std::vector<double>& x,
                            const cg_options& options) {
    const std::size_t n = b.size();
    GPF_CHECK(diagonal.size() == n);
    if (x.size() != n) x.assign(n, 0.0);

    cg_result result;
    if (inject_cg_fault(x, result)) return result;
    // SSOR needs A's triangular parts; behind an opaque operator only the
    // diagonal is known, so the solve runs with Jacobi instead. Warn once
    // per process rather than downgrade silently.
    if (options.preconditioner == preconditioner_kind::ssor) {
        if (!ssor_operator_warned().exchange(true, std::memory_order_relaxed)) {
            log(log_level::warning)
                << "cg_solve_operator: ssor preconditioning is unavailable for "
                   "matrix-free solves; using jacobi (this is logged once)";
        }
    }
    const double bnorm = norm2(b);
    if (bnorm == 0.0) {
        x.assign(n, 0.0);
        result.converged = true;
        return result;
    }

    const bool precondition = options.preconditioner != preconditioner_kind::none;
    if (precondition) {
        for (const double d : diagonal) {
            GPF_CHECK_MSG(d > 0.0, "jacobi preconditioner requires positive diagonal");
        }
    }
    const std::size_t max_iter =
        options.max_iterations > 0 ? options.max_iterations : 10 * n + 100;

    std::vector<double> r(n), z(n), p(n), ap(n);
    apply(x, ap);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];

    const auto precond = [&](const std::vector<double>& rin, std::vector<double>& zout) {
        if (!precondition) {
            zout = rin;
            return;
        }
        zout.resize(n);
        for (std::size_t i = 0; i < n; ++i) zout[i] = rin[i] / diagonal[i];
    };

    precond(r, z);
    p = z;
    double rz = dot(r, z);

    for (std::size_t it = 0; it < max_iter; ++it) {
        result.residual = norm2(r) / bnorm;
        if (!std::isfinite(result.residual)) break; // contaminated: iterating cannot recover
        if (result.residual <= options.tolerance) {
            result.converged = true;
            result.iterations = it;
            return result;
        }
        apply(p, ap);
        const double pap = dot(p, ap);
        if (!(pap > 0.0)) break; // not SPD along p (or NaN); bail out
        const double alpha = rz / pap;
        axpy(alpha, p, x);
        axpy(-alpha, ap, r);
        precond(r, z);
        const double rz_new = dot(r, z);
        const double beta = rz_new / rz;
        rz = rz_new;
        parallel_for_chunks(
            n,
            [&](std::size_t begin, std::size_t end) {
                simd().xpby(z.data() + begin, beta, p.data() + begin, end - begin);
            },
            kVectorGrain);
        result.iterations = it + 1;
    }
    result.residual = norm2(r) / bnorm;
    result.converged = result.residual <= options.tolerance;
    return result;
}

} // namespace gpf
