// Row model for standard-cell legalization. The placement region is cut
// into num_rows horizontal rows of row_height; macro blocks and fixed
// cells carve blockage intervals out of the rows they cover.
#pragma once

#include <cstddef>
#include <vector>

#include "geometry/geometry.hpp"
#include "netlist/netlist.hpp"

namespace gpf {

struct row_segment {
    double xlo = 0.0;
    double xhi = 0.0;
    double width() const { return xhi - xlo; }
};

struct placement_row {
    double y = 0.0;      ///< bottom of the row
    double height = 0.0;
    std::vector<row_segment> segments; ///< free intervals, ascending, disjoint
};

class row_model {
public:
    /// Build rows from the netlist region; obstacles (fixed cells and, when
    /// `treat_blocks_as_obstacles`, all blocks at their positions in `pl`)
    /// are subtracted from the row segments.
    row_model(const netlist& nl, const placement& pl, bool treat_blocks_as_obstacles);

    std::size_t num_rows() const { return rows_.size(); }
    const placement_row& row(std::size_t r) const { return rows_[r]; }
    const std::vector<placement_row>& rows() const { return rows_; }

    /// Row whose vertical span contains (or is closest to) y-center `y`.
    std::size_t nearest_row(double y) const;

    /// y-center of row r.
    double row_center(std::size_t r) const;

    double total_free_width(std::size_t r) const;

private:
    void subtract(std::size_t r, double xlo, double xhi);

    std::vector<placement_row> rows_;
    double region_ylo_ = 0.0;
    double row_height_ = 1.0;
};

} // namespace gpf
