# Empty compiler generated dependencies file for gpf_legal.
# This may be replaced when dependencies are built.
