// Paper-style ASCII tables for the experiment harness.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gpf {

class ascii_table {
public:
    explicit ascii_table(std::vector<std::string> headers);

    void add_row(std::vector<std::string> cells);
    /// Horizontal separator before the next added row (e.g. above an
    /// "average" footer).
    void add_separator();

    void print(std::ostream& os) const;
    std::string to_string() const;

    std::size_t num_rows() const { return rows_.size(); }

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<bool> separator_before_;
};

/// Fixed-precision formatting helpers for table cells.
std::string fmt_double(double v, int precision = 2);
std::string fmt_percent(double fraction, int precision = 1); ///< 0.53 → "53.0%"
std::string fmt_ratio(double v, int precision = 2);
std::string fmt_count(std::size_t v);

} // namespace gpf
