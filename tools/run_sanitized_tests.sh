#!/usr/bin/env bash
# Build and run the test suite under a sanitizer.
#
#   tools/run_sanitized_tests.sh [thread|address|undefined] [threads]
#
# Defaults to ThreadSanitizer with GPF_THREADS=4 — the configuration that
# exercises the parallel kernels (SpMV, density stamping, FFT passes,
# concurrent axis solves) for data races. The build lands in
# build-<san>san/ so it never disturbs the regular build tree.
set -euo pipefail
cd "$(dirname "$0")/.."

SAN="${1:-thread}"
THREADS="${2:-4}"
BUILD_DIR="build-${SAN}san"

case "$SAN" in
  thread|address|undefined) ;;
  *) echo "usage: $0 [thread|address|undefined] [threads]" >&2; exit 2 ;;
esac

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGPF_SANITIZE="$SAN" \
  -DGPF_BUILD_BENCHMARKS=OFF \
  -DGPF_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j"$(nproc)"

# GPF_THREADS sets the default pool size; the equivalence tests also resize
# the pool themselves, so both defaulted and explicit pools run sanitized.
# GPF_SIMD pins the kernel dispatch to the scalar reference under the
# sanitizer (instrumentation of the intrinsic paths is spotty, and scalar
# is bitwise identical anyway); callers may still override it.
export GPF_SIMD="${GPF_SIMD:-scalar}"
GPF_THREADS="$THREADS" ctest --test-dir "$BUILD_DIR" --output-on-failure
