// gpf_bench_gate end-to-end: the gate is a process-boundary contract
// (CI calls the binary, not a library), so these tests exec the real
// executable against synthetic BENCH_*.json files and assert on exit
// codes — pass on baseline-identical reports, nonzero on every
// regression class, 64 on usage errors.
#include <gtest/gtest.h>

#if !defined(_WIN32) && defined(GPF_BENCH_GATE_BIN)

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "test_paths.hpp"

namespace gpf {
namespace {

struct record_spec {
    std::string circuit = "avq.small";
    std::string method = "kraftwerk";
    bool ok = true;
    bool degraded = false;
    std::string hpwl = "1234.5";    // literal JSON: number or "null"
    std::string seconds = "1.0";
    std::string iterations = "42";
};

/// Writes a schema-complete BENCH report like bench/common.cpp's
/// json_report::write, returning its path.
std::string write_report(const std::string& tag,
                         const std::vector<record_spec>& records,
                         const std::string& bench = "table1_wirelength",
                         double suite_scale = 0.02, int seed = 1) {
    const std::string path =
        testing::unique_temp_base("gpf_gate_" + tag) + ".json";
    std::ofstream out(path);
    out << "{\n  \"bench\": \"" << bench << "\",\n  \"suite_scale\": "
        << suite_scale << ",\n  \"seed\": " << seed
        << ",\n  \"metrics\": [\"hpwl\"],\n  \"results\": [\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const record_spec& r = records[i];
        out << "    {\"circuit\": \"" << r.circuit << "\", \"method\": \""
            << r.method << "\", \"ok\": " << (r.ok ? "true" : "false")
            << ", \"degraded\": " << (r.degraded ? "true" : "false")
            << ", \"hpwl\": " << r.hpwl << ", \"seconds\": " << r.seconds
            << ", \"iterations\": " << r.iterations << "}"
            << (i + 1 < records.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return path;
}

testing::subprocess_result run_gate(const std::string& args) {
    return testing::run_subprocess(std::string(GPF_BENCH_GATE_BIN) + " " + args);
}

class BenchGate : public ::testing::Test {
protected:
    void TearDown() override {
        for (const std::string& p : cleanup_) std::filesystem::remove(p);
    }
    std::string track(std::string path) {
        cleanup_.push_back(path);
        return path;
    }
    /// Baseline written from `base_records`, then the gate run against a
    /// fresh report containing `fresh_records`; returns the gate's result.
    testing::subprocess_result gate_against(
        const std::vector<record_spec>& base_records,
        const std::vector<record_spec>& fresh_records,
        const std::string& extra_args = "") {
        const std::string base_report = track(write_report("base", base_records));
        const std::string baseline =
            track(testing::unique_temp_base("gpf_gate_baseline") + ".json");
        const testing::subprocess_result wrote =
            run_gate("--write-baseline " + baseline + " " + base_report);
        EXPECT_EQ(wrote.exit_code, 0) << wrote.output;
        const std::string fresh = track(write_report("fresh", fresh_records));
        return run_gate("--baseline " + baseline + " " + extra_args + " " + fresh);
    }
    std::vector<std::string> cleanup_;
};

TEST_F(BenchGate, ValidatePassesOnWellFormedReport) {
    const std::string path = track(write_report("ok", {record_spec{}}));
    const testing::subprocess_result res = run_gate("--validate " + path);
    EXPECT_EQ(res.exit_code, 0) << res.output;
}

TEST_F(BenchGate, ValidateFailsWithoutDegradedKey) {
    const std::string path =
        track(testing::unique_temp_base("gpf_gate_nodegraded") + ".json");
    std::ofstream out(path);
    out << "{\"bench\": \"b\", \"suite_scale\": 1, \"seed\": 1, \"results\": "
           "[{\"circuit\": \"c\", \"method\": \"m\", \"ok\": true, "
           "\"hpwl\": 10.0, \"seconds\": 1.0, \"iterations\": 5}]}";
    out.close();
    const testing::subprocess_result res = run_gate("--validate " + path);
    EXPECT_EQ(res.exit_code, 1) << res.output;
    EXPECT_NE(res.output.find("degraded"), std::string::npos) << res.output;
}

TEST_F(BenchGate, ValidateFailsOnMisleadingZeroHpwl) {
    record_spec zero;
    zero.hpwl = "0";
    const std::string path = track(write_report("zero", {zero}));
    const testing::subprocess_result res = run_gate("--validate " + path);
    EXPECT_EQ(res.exit_code, 1) << res.output;
    EXPECT_NE(res.output.find("hpwl"), std::string::npos) << res.output;
}

TEST_F(BenchGate, ValidateFailsWhenDeadRecordCarriesMetrics) {
    record_spec dead;
    dead.ok = false; // ok=false but hpwl/seconds still numeric
    const std::string path = track(write_report("dead", {dead}));
    const testing::subprocess_result res = run_gate("--validate " + path);
    EXPECT_EQ(res.exit_code, 1) << res.output;
    EXPECT_NE(res.output.find("null"), std::string::npos) << res.output;
}

TEST_F(BenchGate, ValidateAcceptsDeadRecordWithNullMetrics) {
    record_spec dead;
    dead.ok = false;
    dead.hpwl = "null";
    dead.seconds = "null";
    const std::string path = track(write_report("deadnull", {dead}));
    const testing::subprocess_result res = run_gate("--validate " + path);
    EXPECT_EQ(res.exit_code, 0) << res.output;
}

TEST_F(BenchGate, PassesOnIdenticalRun) {
    const testing::subprocess_result res =
        gate_against({record_spec{}}, {record_spec{}});
    EXPECT_EQ(res.exit_code, 0) << res.output;
}

TEST_F(BenchGate, PassesWithinNoiseAllowance) {
    record_spec fresh;
    fresh.hpwl = "1240.0";   // +0.45% < 2% tolerance
    fresh.seconds = "1.2";   // +20% < 60% + 0.25 s floor
    fresh.iterations = "44"; // +2 <= floor of 3
    const testing::subprocess_result res =
        gate_against({record_spec{}}, {fresh});
    EXPECT_EQ(res.exit_code, 0) << res.output;
}

TEST_F(BenchGate, FailsOnHpwlRegression) {
    record_spec fresh;
    fresh.hpwl = "1400.0"; // +13% > 2%
    const testing::subprocess_result res =
        gate_against({record_spec{}}, {fresh});
    EXPECT_EQ(res.exit_code, 1) << res.output;
    EXPECT_NE(res.output.find("QoR regression"), std::string::npos) << res.output;
}

TEST_F(BenchGate, FailsOnPerfRegression) {
    record_spec fresh;
    fresh.seconds = "5.0"; // 1.0 s baseline: allowance 1.0*1.6 + 0.25 = 1.85 s
    const testing::subprocess_result res =
        gate_against({record_spec{}}, {fresh});
    EXPECT_EQ(res.exit_code, 1) << res.output;
    EXPECT_NE(res.output.find("perf regression"), std::string::npos) << res.output;
}

TEST_F(BenchGate, NoPerfFlagSkipsWallClockGating) {
    record_spec fresh;
    fresh.seconds = "5.0";
    const testing::subprocess_result res =
        gate_against({record_spec{}}, {fresh}, "--no-perf");
    EXPECT_EQ(res.exit_code, 0) << res.output;
}

TEST_F(BenchGate, FailsOnIterationBlowup) {
    record_spec fresh;
    fresh.iterations = "80"; // 42 + max(25%, 3) = 55.5 allowed
    const testing::subprocess_result res =
        gate_against({record_spec{}}, {fresh});
    EXPECT_EQ(res.exit_code, 1) << res.output;
    EXPECT_NE(res.output.find("convergence"), std::string::npos) << res.output;
}

TEST_F(BenchGate, FailsWhenBaselineRecordDisappears) {
    record_spec second;
    second.circuit = "industry2";
    const testing::subprocess_result res =
        gate_against({record_spec{}, second}, {record_spec{}});
    EXPECT_EQ(res.exit_code, 1) << res.output;
    EXPECT_NE(res.output.find("missing"), std::string::npos) << res.output;
}

TEST_F(BenchGate, FailsWhenFreshRunDegrades) {
    record_spec fresh;
    fresh.degraded = true;
    const testing::subprocess_result res =
        gate_against({record_spec{}}, {fresh});
    EXPECT_EQ(res.exit_code, 1) << res.output;
    EXPECT_NE(res.output.find("degraded"), std::string::npos) << res.output;
}

TEST_F(BenchGate, FailsOnConfigurationMismatch) {
    const std::string base_report = track(write_report("cfg_base", {record_spec{}}));
    const std::string baseline =
        track(testing::unique_temp_base("gpf_gate_cfg_baseline") + ".json");
    ASSERT_EQ(run_gate("--write-baseline " + baseline + " " + base_report)
                  .exit_code,
              0);
    // Same bench name, different suite scale: numbers are not comparable.
    const std::string fresh = track(
        write_report("cfg_fresh", {record_spec{}}, "table1_wirelength", 0.05));
    const testing::subprocess_result res =
        run_gate("--baseline " + baseline + " " + fresh);
    EXPECT_EQ(res.exit_code, 1) << res.output;
    EXPECT_NE(res.output.find("mismatch"), std::string::npos) << res.output;
}

TEST_F(BenchGate, UsageErrorsExit64) {
    EXPECT_EQ(run_gate("").exit_code, 64);
    EXPECT_EQ(run_gate("--no-such-flag x.json").exit_code, 64);
    const std::string path = track(write_report("usage", {record_spec{}}));
    EXPECT_EQ(run_gate("--baseline").exit_code, 64);
    EXPECT_EQ(run_gate("--validate --hpwl-tol banana " + path).exit_code, 64);
}

TEST_F(BenchGate, MissingInputFileIsIoError) {
    EXPECT_EQ(run_gate("--validate /nonexistent/BENCH_x.json").exit_code, 3);
}

} // namespace
} // namespace gpf

#endif // !_WIN32 && GPF_BENCH_GATE_BIN
