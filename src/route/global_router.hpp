// Probabilistic global routing over a capacity grid — the "routing
// estimation" of the paper's congestion-driven flow (section 5), one level
// more faithful than the RUDY map: nets are decomposed into two-pin edges
// by a minimum spanning tree and each edge is routed with the less
// congested of its L-shapes (optionally sweeping Z-shapes), committing
// track usage to per-bin horizontal/vertical capacities.
#pragma once

#include <cstddef>
#include <vector>

#include "core/placer.hpp"
#include "geometry/geometry.hpp"
#include "netlist/netlist.hpp"

namespace gpf {

struct router_options {
    double h_capacity = 8.0;   ///< horizontal tracks per bin
    double v_capacity = 8.0;   ///< vertical tracks per bin
    bool use_z_shapes = true;  ///< sweep Z bends in addition to the two Ls
    std::size_t max_z_candidates = 8; ///< intermediate coordinates probed per edge
    /// Rip-up-and-reroute sweeps after the initial greedy pass: every bent
    /// edge is re-chosen against the congestion left by the others, which
    /// lets early commitments escape congestion discovered later. 0
    /// restores single-pass greedy routing.
    std::size_t reroute_passes = 2;
    /// Congestion cost exponent: cost of using a bin = (usage/capacity)^p.
    double cost_exponent = 2.0;
};

struct routing_result {
    std::size_t nx = 0;
    std::size_t ny = 0;
    std::vector<double> h_usage; ///< tracks used per bin (row-major, ix major)
    std::vector<double> v_usage;
    double wirelength = 0.0;     ///< total routed length, layout units
    double overflow = 0.0;       ///< Σ max(0, usage − capacity) over bins & layers
    double max_utilization = 0.0; ///< worst bin usage/capacity over both layers
    std::size_t edges_routed = 0;

    double h_at(std::size_t ix, std::size_t iy) const { return h_usage[ix * ny + iy]; }
    double v_at(std::size_t ix, std::size_t iy) const { return v_usage[ix * ny + iy]; }

    /// Combined per-bin utilization map (max of the two layers), suitable
    /// for heat-map export and for the placer's density hook.
    std::vector<double> utilization_map(const router_options& options) const;
};

/// Route every net of the placement over an nx × ny grid spanning `region`.
/// Deterministic: nets are processed in id order, ties broken toward the
/// lower bend.
routing_result route_global(const netlist& nl, const placement& pl, const rect& region,
                            std::size_t nx, std::size_t ny,
                            const router_options& options = {});

/// Density hook driven by the router instead of RUDY: bins whose routing
/// utilization exceeds the mean repel cells like over-dense bins do.
placer::density_hook make_router_hook(const netlist& nl, router_options options = {},
                                      double density_weight = 1.0);

} // namespace gpf
