#include "cluster/coarsen.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>

#include "model/net_models.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace gpf {

namespace {

/// Cells the matcher may merge: movable non-pads. Fixed cells and pads
/// carry through one-to-one so the coarse netlist keeps the exact supply
/// sinks and boundary constraints of the fine one.
bool mergeable(const cell& c) { return !c.fixed && c.kind != cell_kind::pad; }

} // namespace

std::optional<cluster_level> coarsen(const netlist& fine, const coarsen_options& opt) {
    const std::size_t n = fine.num_cells();
    const std::size_t movable = fine.num_movable();
    if (movable <= opt.min_coarse_cells) return std::nullopt;

    const double avg_area = fine.movable_area() / static_cast<double>(movable);
    const double area_cap = opt.max_area_ratio * avg_area;

    // --- heavy-edge / best-choice matching --------------------------------
    // Visit cells in id order; each unmatched mergeable cell accumulates
    // the clique-projected weight it shares with every mergeable neighbor
    // and pairs with the best one by score = weight / combined area (the
    // best-choice rating: strong connectivity, small resulting cluster).
    // The selection is a total order over (score, id), so the result does
    // not depend on hash-map iteration order, and the whole pass is
    // serial — bitwise identical for any thread count.
    const std::vector<std::vector<net_id>>& adjacency = fine.cell_nets();
    std::vector<cell_id> match(n, invalid_cell);
    std::unordered_map<cell_id, double> weights;
    std::size_t matched_pairs = 0;
    for (cell_id u = 0; u < n; ++u) {
        const cell& cu = fine.cell_at(u);
        if (!mergeable(cu) || match[u] != invalid_cell) continue;
        weights.clear();
        for (const net_id ni : adjacency[u]) {
            const net& fn = fine.net_at(ni);
            const std::size_t d = fn.degree();
            if (d < 2 || d > opt.max_matching_degree) continue;
            const double w = clique_edge_weight(fn.weight, d);
            for (const pin& p : fn.pins) {
                if (p.cell == u) continue;
                const cell& cv = fine.cell_at(p.cell);
                if (!mergeable(cv) || match[p.cell] != invalid_cell) continue;
                if (cu.area() + cv.area() > area_cap) continue;
                weights[p.cell] += w;
            }
        }
        cell_id best = invalid_cell;
        double best_score = 0.0;
        for (const auto& [v, w] : weights) {
            const double score = w / (cu.area() + fine.cell_at(v).area());
            if (best == invalid_cell || score > best_score ||
                (score == best_score && v < best)) {
                best = v;
                best_score = score;
            }
        }
        if (best == invalid_cell) continue;
        match[u] = best;
        match[best] = u;
        ++matched_pairs;
    }

    // A pass that cannot shrink the movable count by ~5% would stack
    // near-identity levels whose placements cost time and buy nothing.
    if (matched_pairs < movable / 20) return std::nullopt;

    // --- coarse cells ------------------------------------------------------
    // Coarse ids are assigned in fine-id order of each cluster's smallest
    // member, which fixes the coarse netlist layout deterministically.
    cluster_level level;
    level.parent.assign(n, invalid_cell);
    level.offset.assign(n, point());
    level.fine_pins = fine.num_pins();
    level.fine_movable = movable;

    const rect region = fine.region();
    for (cell_id u = 0; u < n; ++u) {
        if (level.parent[u] != invalid_cell) continue;
        const cell& cu = fine.cell_at(u);
        if (!mergeable(cu) || match[u] == invalid_cell) {
            // Fixed cells, pads and unmatched movables carry through 1:1.
            level.parent[u] = level.coarse.add_cell(cu);
            continue;
        }
        const cell_id v = match[u];
        const cell& cv = fine.cell_at(v);
        cell merged;
        merged.name = "m" + std::to_string(level.coarse.num_cells());
        const double area = cu.area() + cv.area();
        // Square footprint of the summed area, clipped to the region, so
        // density stamping sees the exact member area at a plausible
        // aspect no matter how elongated the members were.
        const double side = std::sqrt(area);
        merged.width = std::min(side, region.width());
        merged.height = area / merged.width;
        merged.kind = (cu.kind == cell_kind::block || cv.kind == cell_kind::block)
                          ? cell_kind::block
                          : cell_kind::standard;
        merged.fixed = false;
        merged.intrinsic_delay = std::max(cu.intrinsic_delay, cv.intrinsic_delay);
        merged.power = cu.power + cv.power;
        merged.sequential = cu.sequential || cv.sequential;
        const cell_id cc = level.coarse.add_cell(std::move(merged));
        level.parent[u] = cc;
        level.parent[v] = cc;
        // Members sit side by side inside the cluster footprint; the
        // interpolated placement then starts with the members already
        // locally separated instead of coincident.
        const double span = cu.width + cv.width;
        level.offset[u] = point(-span / 2 + cu.width / 2, 0.0);
        level.offset[v] = point(span / 2 - cv.width / 2, 0.0);
    }

    // --- net projection ----------------------------------------------------
    // Pins of one net landing in the same cluster merge into a single pin
    // at the cluster center; nets collapsing to fewer than two distinct
    // clusters are dropped. Pin order inside a kept net follows the first
    // occurrence in the fine net, so projection is order-deterministic.
    std::unordered_map<cell_id, std::size_t> seen;
    for (net_id ni = 0; ni < fine.num_nets(); ++ni) {
        const net& fn = fine.net_at(ni);
        net cn;
        cn.name = fn.name;
        cn.weight = fn.weight;
        seen.clear();
        std::size_t merged_here = 0;
        for (std::size_t pi = 0; pi < fn.pins.size(); ++pi) {
            const cell_id cc = level.parent[fn.pins[pi].cell];
            const auto [it, inserted] = seen.emplace(cc, cn.pins.size());
            if (inserted) {
                cn.pins.push_back({cc, point()});
            } else {
                ++merged_here;
            }
            if (fn.driver == pi) cn.driver = it->second;
        }
        if (cn.pins.size() < 2) {
            level.dropped_pins += fn.degree();
            continue;
        }
        level.merged_pins += merged_here;
        level.coarse.add_net(std::move(cn));
    }

    level.coarse.set_region(region);
    level.coarse.set_row_height(fine.row_height());
    return level;
}

cluster_hierarchy build_hierarchy(const netlist& nl, std::size_t max_levels,
                                  const coarsen_options& opt) {
    cluster_hierarchy hierarchy;
    const netlist* current = &nl;
    for (std::size_t l = 0; l < max_levels; ++l) {
        std::optional<cluster_level> level = coarsen(*current, opt);
        if (!level.has_value()) break;
        log(log_level::debug) << "coarsen level " << l + 1 << ": "
                              << current->num_movable() << " -> "
                              << level->coarse.num_movable() << " movable cells, "
                              << level->coarse.num_nets() << " nets ("
                              << level->merged_pins << " pins merged, "
                              << level->dropped_pins << " dropped)";
        hierarchy.levels.push_back(std::move(*level));
        current = &hierarchy.levels.back().coarse;
    }
    return hierarchy;
}

placement interpolate(const netlist& fine, const cluster_level& level,
                      const placement& coarse_pl) {
    GPF_CHECK(level.parent.size() == fine.num_cells());
    GPF_CHECK(coarse_pl.size() == level.coarse.num_cells());
    const rect region = fine.region();
    placement pl(fine.num_cells());
    for (cell_id i = 0; i < fine.num_cells(); ++i) {
        const cell& c = fine.cell_at(i);
        if (c.fixed) {
            pl[i] = c.position;
            continue;
        }
        point p = coarse_pl[level.parent[i]] + level.offset[i];
        // Same projection the placer's clamp_to_region step applies, so an
        // offset poking past the boundary cannot start the next level with
        // an out-of-region center.
        const double hw = std::min(c.width / 2, region.width() / 2);
        const double hh = std::min(c.height / 2, region.height() / 2);
        p.x = std::clamp(p.x, region.xlo + hw, region.xhi - hw);
        p.y = std::clamp(p.y, region.ylo + hh, region.yhi - hh);
        pl[i] = p;
    }
    return pl;
}

} // namespace gpf
