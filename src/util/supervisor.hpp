// Supervised out-of-process placement (DESIGN.md §14).
//
// A placement run that can crash — OOM kill, SIGSEGV in an experimental
// kernel, a wedged transformation — must not take the caller down with
// it. The supervisor forks the run into a child process and watches two
// signals of life: the process itself (waitpid) and the heartbeat counter
// file the placer bumps before every transformation attempt
// (placer_options::heartbeat_path). Each completed attempt is classified:
//
//   * a clean exit code (0/2) ends supervision — the run worked;
//   * a typed failure (3 I/O, 4 invariant, 64 usage) is deterministic —
//     retrying cannot help, the child's code is surfaced as-is;
//   * death by signal (SIGKILL from the OOM killer, SIGSEGV, ...), a
//     heartbeat stall (the supervisor SIGKILLs the wedged child) and
//     internal errors (5) are the crash class: the child is relaunched
//     with exponential backoff, resuming from the latest checkpoint that
//     validates (util/checkpoint.hpp rotates two generations, so a crash
//     that tears the newest still leaves `<path>.prev` to fall back to).
//
// The final exit code keeps the gpf_place contract: 0 only when the
// first attempt was clean, 2 when the run succeeded but supervision had
// to engage (a restarted run is degraded by definition — same contract
// as the in-process recovery ladder), the child's own typed code for
// deterministic failures, and 5 when every restart was exhausted.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace gpf {

struct supervisor_options {
    /// Child command line; argv[0] is the executable (resolved via PATH
    /// when it contains no '/').
    std::vector<std::string> argv;
    /// Command line for restart attempts (typically argv plus --resume);
    /// empty = reuse argv.
    std::vector<std::string> resume_argv;
    /// Heartbeat counter file the child bumps (placer heartbeat_path);
    /// "" disables stall detection.
    std::string heartbeat_path;
    /// Checkpoint the child writes; restarts use resume_argv only when
    /// one of its generations validates. "" = restarts begin from scratch.
    std::string checkpoint_path;
    /// A live child whose heartbeat has not moved for this long is
    /// declared wedged and SIGKILLed. Only meaningful with a heartbeat.
    double stall_seconds = 60.0;
    /// waitpid/heartbeat polling cadence.
    double poll_seconds = 0.1;
    /// Restarts after the first attempt (0 = run once, never restart).
    std::size_t max_restarts = 3;
    /// Exponential backoff between restarts: initial delay, doubling per
    /// restart, capped.
    double backoff_initial_seconds = 0.5;
    double backoff_max_seconds = 8.0;
};

/// How one child attempt ended.
enum class child_outcome {
    clean,             ///< exit 0
    degraded,          ///< exit 2 (valid outputs, recovery engaged)
    io_failure,        ///< exit 3 — deterministic, not retried
    invariant_failure, ///< exit 4 — deterministic, not retried
    usage_failure,     ///< exit 64 — deterministic, not retried
    internal_failure,  ///< exit 5 or any unrecognized code — retried
    signal_death,      ///< killed by a signal (OOM killer, SIGSEGV, ...)
    heartbeat_stall,   ///< supervisor SIGKILLed a wedged child
    spawn_failure,     ///< fork/exec itself failed — not retried
};

const char* child_outcome_name(child_outcome outcome);

/// True for the crash class — outcomes a restart may fix.
bool outcome_retryable(child_outcome outcome);

struct supervise_attempt {
    child_outcome outcome = child_outcome::spawn_failure;
    int exit_code = -1;    ///< valid when the child exited
    int term_signal = 0;   ///< valid for signal_death / heartbeat_stall
    double seconds = 0.0;  ///< wall clock of the attempt
    bool resumed = false;  ///< launched from a validated checkpoint
};

struct supervise_result {
    std::vector<supervise_attempt> attempts;
    /// Final code under the gpf_place contract (see file header).
    int exit_code = 5;
    /// The run produced valid outputs (final attempt ended 0 or 2).
    bool succeeded() const { return exit_code == 0 || exit_code == 2; }
};

/// Run opt.argv under supervision; blocks until the run succeeds, fails
/// deterministically, or exhausts its restarts.
supervise_result supervise(const supervisor_options& opt);

} // namespace gpf
