// The supervised out-of-process runner (util/supervisor.hpp, DESIGN.md
// §14). Children here are tiny /bin/sh scripts that die in controlled
// ways — clean exits, typed failures, SIGKILL suicide, a wedged sleep —
// so every branch of the classify/retry/resume state machine is
// exercised in well under a second, without running a real placement.
#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "test_paths.hpp"
#include "gpf.hpp"

namespace gpf {
namespace {

class Supervisor : public ::testing::Test {
protected:
    void SetUp() override {
        base_ = testing::unique_temp_base("gpf_supervisor");
        script_ = base_ + ".sh";
        marker_ = base_ + ".marker";
        heartbeat_ = base_ + ".heartbeat";
        checkpoint_ = base_ + ".ckpt";
    }
    void TearDown() override {
        for (const std::string& p :
             {script_, marker_, heartbeat_, checkpoint_, checkpoint_ + ".prev"}) {
            std::filesystem::remove(p);
        }
    }

    /// Writes a shell script and returns the argv that runs it.
    std::vector<std::string> shell(const std::string& body) {
        std::ofstream out(script_);
        out << "#!/bin/sh\n" << body << "\n";
        out.close();
        return {"/bin/sh", script_};
    }

    /// Fast-retry options so crash drills finish in milliseconds.
    supervisor_options fast_options(std::vector<std::string> argv) {
        supervisor_options opt;
        opt.argv = std::move(argv);
        opt.poll_seconds = 0.01;
        opt.backoff_initial_seconds = 0.01;
        opt.backoff_max_seconds = 0.05;
        return opt;
    }

    std::string base_, script_, marker_, heartbeat_, checkpoint_;
};

TEST_F(Supervisor, OutcomeTaxonomy) {
    EXPECT_FALSE(outcome_retryable(child_outcome::clean));
    EXPECT_FALSE(outcome_retryable(child_outcome::degraded));
    EXPECT_FALSE(outcome_retryable(child_outcome::io_failure));
    EXPECT_FALSE(outcome_retryable(child_outcome::invariant_failure));
    EXPECT_FALSE(outcome_retryable(child_outcome::usage_failure));
    EXPECT_FALSE(outcome_retryable(child_outcome::spawn_failure));
    EXPECT_TRUE(outcome_retryable(child_outcome::internal_failure));
    EXPECT_TRUE(outcome_retryable(child_outcome::signal_death));
    EXPECT_TRUE(outcome_retryable(child_outcome::heartbeat_stall));
    EXPECT_STREQ(child_outcome_name(child_outcome::signal_death), "signal_death");
    EXPECT_STREQ(child_outcome_name(child_outcome::heartbeat_stall),
                 "heartbeat_stall");
}

TEST_F(Supervisor, EmptyCommandLineIsAUsageError) {
    const supervise_result res = supervise(supervisor_options{});
    EXPECT_EQ(res.exit_code, 64);
    EXPECT_TRUE(res.attempts.empty());
    EXPECT_FALSE(res.succeeded());
}

TEST_F(Supervisor, CleanFirstAttemptExitsZero) {
    const supervise_result res = supervise(fast_options(shell("exit 0")));
    EXPECT_EQ(res.exit_code, 0);
    ASSERT_EQ(res.attempts.size(), 1u);
    EXPECT_EQ(res.attempts[0].outcome, child_outcome::clean);
    EXPECT_EQ(res.attempts[0].exit_code, 0);
    EXPECT_FALSE(res.attempts[0].resumed);
    EXPECT_TRUE(res.succeeded());
}

TEST_F(Supervisor, DegradedFirstAttemptKeepsExitTwo) {
    const supervise_result res = supervise(fast_options(shell("exit 2")));
    EXPECT_EQ(res.exit_code, 2);
    ASSERT_EQ(res.attempts.size(), 1u);
    EXPECT_EQ(res.attempts[0].outcome, child_outcome::degraded);
    EXPECT_TRUE(res.succeeded());
}

TEST_F(Supervisor, TypedFailuresAreNeverRetried) {
    // Deterministic failures (I/O 3, invariant 4, usage 64) pass through
    // unchanged: rerunning a malformed input cannot fix it.
    for (const int code : {3, 4, 64}) {
        SCOPED_TRACE(code);
        const supervise_result res =
            supervise(fast_options(shell("exit " + std::to_string(code))));
        EXPECT_EQ(res.exit_code, code);
        ASSERT_EQ(res.attempts.size(), 1u);
        EXPECT_FALSE(res.succeeded());
    }
}

TEST_F(Supervisor, SignalDeathIsRestartedAndSuccessIsDegraded) {
    // First run leaves a marker and SIGKILLs itself (the OOM-killer
    // shape); the restarted run sees the marker and succeeds. Success
    // after a restart is exit 2, never 0 — the run needed supervision.
    const supervise_result res = supervise(fast_options(shell(
        "if [ -f '" + marker_ + "' ]; then exit 0; fi\n"
        "touch '" + marker_ + "'\n"
        "kill -9 $$")));
    EXPECT_EQ(res.exit_code, 2);
    ASSERT_EQ(res.attempts.size(), 2u);
    EXPECT_EQ(res.attempts[0].outcome, child_outcome::signal_death);
    EXPECT_EQ(res.attempts[0].term_signal, SIGKILL);
    EXPECT_EQ(res.attempts[1].outcome, child_outcome::clean);
    EXPECT_TRUE(res.succeeded());
}

TEST_F(Supervisor, RestartBudgetExhaustionIsAnInternalFailure) {
    supervisor_options opt = fast_options(shell("kill -9 $$"));
    opt.max_restarts = 2;
    const supervise_result res = supervise(opt);
    EXPECT_EQ(res.exit_code, 5);
    ASSERT_EQ(res.attempts.size(), 3u); // first run + 2 restarts
    for (const supervise_attempt& a : res.attempts) {
        EXPECT_EQ(a.outcome, child_outcome::signal_death);
    }
    EXPECT_FALSE(res.succeeded());
}

TEST_F(Supervisor, ExecFailureIsASpawnFailureNotARetryLoop) {
    supervisor_options opt = fast_options({base_ + ".does_not_exist"});
    const supervise_result res = supervise(opt);
    ASSERT_EQ(res.attempts.size(), 1u);
    EXPECT_EQ(res.attempts[0].outcome, child_outcome::spawn_failure);
    EXPECT_EQ(res.exit_code, 127);
    EXPECT_FALSE(res.succeeded());
}

TEST_F(Supervisor, WedgedChildIsKilledOnHeartbeatStall) {
    // The child beats once, then sleeps far past the stall budget: the
    // supervisor must SIGKILL it instead of waiting out the sleep. With
    // restarts disabled, the stall surfaces as the internal-failure exit.
    supervisor_options opt = fast_options(shell(
        "echo 1 > '" + heartbeat_ + "'\n"
        "sleep 30"));
    opt.heartbeat_path = heartbeat_;
    opt.stall_seconds = 0.2;
    opt.max_restarts = 0;
    const supervise_result res = supervise(opt);
    ASSERT_EQ(res.attempts.size(), 1u);
    EXPECT_EQ(res.attempts[0].outcome, child_outcome::heartbeat_stall);
    EXPECT_EQ(res.attempts[0].term_signal, SIGKILL);
    EXPECT_LT(res.attempts[0].seconds, 10.0); // killed, not slept out
    EXPECT_EQ(res.exit_code, 5);
}

TEST_F(Supervisor, RestartResumesOnlyFromAValidatedCheckpoint) {
    // The child crashes unless launched with --resume. A valid checkpoint
    // exists, so the restart must switch to resume_argv and mark the
    // attempt as resumed.
    const std::vector<std::string> argv = shell(
        "if [ \"$1\" = \"--resume\" ]; then exit 0; fi\n"
        "kill -9 $$");
    write_checkpoint_file(checkpoint_, 1, "resumable state");
    supervisor_options opt = fast_options(argv);
    opt.resume_argv = argv;
    opt.resume_argv.push_back("--resume");
    opt.checkpoint_path = checkpoint_;
    const supervise_result res = supervise(opt);
    EXPECT_EQ(res.exit_code, 2);
    ASSERT_EQ(res.attempts.size(), 2u);
    EXPECT_FALSE(res.attempts[0].resumed); // first attempt is always fresh
    EXPECT_TRUE(res.attempts[1].resumed);
    EXPECT_EQ(res.attempts[1].outcome, child_outcome::clean);
}

TEST_F(Supervisor, TornCheckpointRestartsFromScratchInsteadOfDying) {
    // No checkpoint generation validates: passing --resume would kill the
    // child with a typed exit 3 (non-retryable), so the supervisor must
    // relaunch the fresh argv instead.
    std::ofstream(checkpoint_) << "to";
    const std::vector<std::string> argv = shell(
        "if [ \"$1\" = \"--resume\" ]; then exit 3; fi\n"
        "if [ -f '" + marker_ + "' ]; then exit 0; fi\n"
        "touch '" + marker_ + "'\n"
        "kill -9 $$");
    supervisor_options opt = fast_options(argv);
    opt.resume_argv = argv;
    opt.resume_argv.push_back("--resume");
    opt.checkpoint_path = checkpoint_;
    const supervise_result res = supervise(opt);
    EXPECT_EQ(res.exit_code, 2);
    ASSERT_EQ(res.attempts.size(), 2u);
    EXPECT_FALSE(res.attempts[1].resumed);
    EXPECT_EQ(res.attempts[1].outcome, child_outcome::clean);
}

} // namespace
} // namespace gpf
