// Internal seam between the SIMD dispatcher (simd.cpp) and the per-ISA
// kernel translation units. Each ISA TU always defines its accessor; it
// returns nullptr when the TU was compiled without that instruction set
// (wrong architecture, or GPF_ENABLE_SIMD=OFF), so the dispatcher can
// probe availability with plain link-time calls — no weak symbols, no
// preprocessor coupling between translation units.
//
// The scalar reference kernels live here too: the AVX2/NEON TUs reuse
// them verbatim for loop tails and for kernels they do not vectorize,
// which keeps "bitwise identical to scalar" true by construction for
// those slots. Everything in this header is compiled with
// -ffp-contract=off in every kernel TU (see src/CMakeLists.txt).
#pragma once

#include "util/simd.hpp"

namespace gpf::detail {

/// nullptr unless compiled with AVX2 enabled (x86-64 only).
const simd_kernels* simd_avx2_table();

/// nullptr unless compiled with AVX-512F enabled (x86-64 only).
const simd_kernels* simd_avx512_table();

/// nullptr unless compiled for aarch64 NEON.
const simd_kernels* simd_neon_table();

// --- scalar reference kernels (definitions in simd.cpp) -------------------

void axpy_scalar(double alpha, const double* x, double* y, std::size_t n);
void xpby_scalar(const double* z, double beta, double* p, std::size_t n);
void accumulate_scalar(const double* src, double* dst, std::size_t n);
void add_scalar_scalar(double* dst, double c, std::size_t n);
void scale_scalar(double* p, double s, std::size_t n);
double dot_scalar(const double* a, const double* b, std::size_t n);
double dot_gather_scalar(const double* v, const std::size_t* idx,
                         const double* x, std::size_t n);
void cmul_scalar(std::complex<double>* w, const std::complex<double>* s,
                 std::size_t n);
void cmul_pair_scalar(std::complex<double>* w, std::complex<double>* q,
                      const std::complex<double>* s,
                      const std::complex<double>* t, std::size_t n);
void fft_radix2_scalar(std::complex<double>* a, std::size_t n, std::size_t len,
                       const std::complex<double>* w);
void fft_radix4_scalar(std::complex<double>* a, std::size_t n,
                       std::size_t block, const std::complex<double>* wa,
                       const std::complex<double>* wb, bool inverse);

} // namespace gpf::detail
