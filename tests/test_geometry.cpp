#include <gtest/gtest.h>

#include <sstream>

#include "geometry/geometry.hpp"

namespace gpf {
namespace {

TEST(Point, ArithmeticOperators) {
    const point a(1.0, 2.0);
    const point b(3.0, -4.0);
    EXPECT_EQ(a + b, point(4.0, -2.0));
    EXPECT_EQ(a - b, point(-2.0, 6.0));
    EXPECT_EQ(a * 2.0, point(2.0, 4.0));
    EXPECT_EQ(2.0 * a, point(2.0, 4.0));
}

TEST(Point, Norms) {
    const point p(3.0, 4.0);
    EXPECT_DOUBLE_EQ(p.norm(), 5.0);
    EXPECT_DOUBLE_EQ(p.norm_sq(), 25.0);
}

TEST(Point, Distances) {
    const point a(0.0, 0.0);
    const point b(3.0, 4.0);
    EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
    EXPECT_DOUBLE_EQ(manhattan_distance(a, b), 7.0);
}

TEST(Interval, EmptyAndLength) {
    const interval empty;
    EXPECT_TRUE(empty.empty());
    EXPECT_DOUBLE_EQ(empty.length(), 0.0);

    const interval unit(0.0, 1.0);
    EXPECT_FALSE(unit.empty());
    EXPECT_DOUBLE_EQ(unit.length(), 1.0);
    EXPECT_DOUBLE_EQ(unit.center(), 0.5);
}

TEST(Interval, Overlap) {
    EXPECT_DOUBLE_EQ(overlap(interval(0, 2), interval(1, 3)), 1.0);
    EXPECT_DOUBLE_EQ(overlap(interval(0, 1), interval(2, 3)), 0.0);
    EXPECT_DOUBLE_EQ(overlap(interval(0, 4), interval(1, 2)), 1.0);
    EXPECT_DOUBLE_EQ(overlap(interval(0, 1), interval(1, 2)), 0.0); // touching
}

TEST(Interval, Clamp) {
    const interval i(-1.0, 1.0);
    EXPECT_DOUBLE_EQ(i.clamp(-5.0), -1.0);
    EXPECT_DOUBLE_EQ(i.clamp(0.3), 0.3);
    EXPECT_DOUBLE_EQ(i.clamp(7.0), 1.0);
}

TEST(Rect, BasicProperties) {
    const rect r(0.0, 0.0, 4.0, 2.0);
    EXPECT_FALSE(r.empty());
    EXPECT_DOUBLE_EQ(r.width(), 4.0);
    EXPECT_DOUBLE_EQ(r.height(), 2.0);
    EXPECT_DOUBLE_EQ(r.area(), 8.0);
    EXPECT_DOUBLE_EQ(r.half_perimeter(), 6.0);
    EXPECT_EQ(r.center(), point(2.0, 1.0));
}

TEST(Rect, DefaultIsEmpty) {
    const rect r;
    EXPECT_TRUE(r.empty());
    EXPECT_DOUBLE_EQ(r.area(), 0.0);
}

TEST(Rect, FromCenter) {
    const rect r = rect::from_center(point(5.0, 5.0), 2.0, 4.0);
    EXPECT_DOUBLE_EQ(r.xlo, 4.0);
    EXPECT_DOUBLE_EQ(r.xhi, 6.0);
    EXPECT_DOUBLE_EQ(r.ylo, 3.0);
    EXPECT_DOUBLE_EQ(r.yhi, 7.0);
}

TEST(Rect, Contains) {
    const rect r(0.0, 0.0, 4.0, 4.0);
    EXPECT_TRUE(r.contains(point(2.0, 2.0)));
    EXPECT_TRUE(r.contains(point(0.0, 0.0))); // boundary inclusive
    EXPECT_FALSE(r.contains(point(5.0, 2.0)));
    EXPECT_TRUE(r.contains(rect(1.0, 1.0, 2.0, 2.0)));
    EXPECT_FALSE(r.contains(rect(3.0, 3.0, 5.0, 5.0)));
}

TEST(Rect, ExpandTo) {
    rect r;
    r.expand_to(point(1.0, 1.0));
    EXPECT_DOUBLE_EQ(r.area(), 0.0);
    EXPECT_TRUE(r.contains(point(1.0, 1.0)));
    r.expand_to(point(3.0, -1.0));
    EXPECT_DOUBLE_EQ(r.xlo, 1.0);
    EXPECT_DOUBLE_EQ(r.xhi, 3.0);
    EXPECT_DOUBLE_EQ(r.ylo, -1.0);
    EXPECT_DOUBLE_EQ(r.yhi, 1.0);
    EXPECT_DOUBLE_EQ(r.half_perimeter(), 4.0);
}

TEST(Rect, OverlapArea) {
    const rect a(0, 0, 2, 2);
    const rect b(1, 1, 3, 3);
    EXPECT_DOUBLE_EQ(overlap_area(a, b), 1.0);
    EXPECT_DOUBLE_EQ(overlap_area(a, rect(5, 5, 6, 6)), 0.0);
    EXPECT_DOUBLE_EQ(overlap_area(a, a), 4.0);
}

TEST(Rect, IntersectAndUnion) {
    const rect a(0, 0, 2, 2);
    const rect b(1, 1, 3, 3);
    const rect i = intersect(a, b);
    EXPECT_DOUBLE_EQ(i.area(), 1.0);
    const rect u = bounding_union(a, b);
    EXPECT_DOUBLE_EQ(u.area(), 9.0);
    EXPECT_TRUE(intersect(a, rect(5, 5, 6, 6)).empty());
    EXPECT_DOUBLE_EQ(bounding_union(rect(), a).area(), 4.0);
}

TEST(Rect, Translated) {
    const rect r = rect(0, 0, 1, 1).translated(point(2.0, 3.0));
    EXPECT_DOUBLE_EQ(r.xlo, 2.0);
    EXPECT_DOUBLE_EQ(r.ylo, 3.0);
}

TEST(Geometry, StreamOutput) {
    std::ostringstream os;
    os << point(1.0, 2.0) << ' ' << rect(0, 0, 1, 1);
    EXPECT_FALSE(os.str().empty());
    EXPECT_NE(os.str().find('('), std::string::npos);
}

} // namespace
} // namespace gpf
