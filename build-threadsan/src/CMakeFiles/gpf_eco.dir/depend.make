# Empty dependencies file for gpf_eco.
# This may be replaced when dependencies are built.
