file(REMOVE_RECURSE
  "libgpf_baseline.a"
)
