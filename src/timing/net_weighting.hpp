// The paper's iterative net-weighting scheme (section 5, "Timing
// Optimization"): each net carries a criticality c_j(m), initialized to 0
// and updated before every placement transformation:
//
//   c(m) = (c(m−1) + 1) / 2   if the net is among the `critical_fraction`
//                             (3%) most critical nets,
//   c(m) =  c(m−1) / 2        otherwise.
//
// Net weights are then multiplied by (1 + c): a never-critical net keeps
// its weight, an always-critical net's weight doubles every step. The
// exponential memory "effectively reduces oscillations of netweights".
#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "timing/sta.hpp"

namespace gpf {

struct net_weighting_options {
    double critical_fraction = 0.03; ///< paper: 3 percent most critical nets
    /// Cumulative weight cap (relative to the original weight): the
    /// paper's scheme doubles an always-critical net's weight every step,
    /// which overflows after a few dozen steps; the cap keeps the system
    /// solvable while preserving the ordering pressure.
    double max_weight_factor = 64.0;
};

class criticality_tracker {
public:
    explicit criticality_tracker(const netlist& nl,
                                 net_weighting_options options = {});

    /// Update criticalities from an STA result and multiply the netlist's
    /// weights by (1 + c). Nets without timing information (no driver /
    /// too many pins) keep their weight.
    void update(netlist& nl, const sta_result& sta);

    const std::vector<double>& criticality() const { return criticality_; }

    /// Restore all net weights to their values at construction.
    void restore_weights(netlist& nl) const;

private:
    net_weighting_options options_;
    std::vector<double> criticality_;
    std::vector<double> original_weight_;
};

} // namespace gpf
