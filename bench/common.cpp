#include "common.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace gpf::bench {

namespace {

double env_double(const char* name, double fallback) {
    const char* v = std::getenv(name);
    return v ? std::atof(v) : fallback;
}

std::size_t env_size(const char* name, std::size_t fallback) {
    const char* v = std::getenv(name);
    return v ? static_cast<std::size_t>(std::atoll(v)) : fallback;
}

} // namespace

double suite_scale() { return env_double("GPF_SCALE", 0.08); }

std::uint64_t suite_seed() {
    return static_cast<std::uint64_t>(env_size("GPF_SEED", 1998));
}

std::size_t max_circuits() { return env_size("GPF_MAX_CIRCUITS", 9); }

std::vector<suite_circuit> selected_suite() {
    std::vector<suite_circuit> all = mcnc_suite();
    if (all.size() > max_circuits()) all.resize(max_circuits());
    return all;
}

netlist instantiate(const suite_circuit& descriptor) {
    return make_suite_circuit(descriptor, suite_scale(), suite_seed());
}

method_result run_kraftwerk(const netlist& nl, double k_force) {
    method_result result;
    phase_capture phases;
    stopwatch sw;
    placer_options opt;
    opt.force_scale_k = k_force;
    if (k_force >= 0.5) {
        // Fast mode: larger steps need fewer transformations; stop earlier.
        opt.max_iterations = 70;
        opt.plateau_window = 10;
    }
    placer p(nl, opt);
    const placement global = p.run();
    placement legal;
    legalize(nl, global, legal);
    result.seconds = sw.elapsed_seconds();
    result.hpwl = total_hpwl(nl, legal);
    result.iterations = p.history().size();
    result.degraded = p.degraded();
    phases.finish(result);
    result.ok = true;
    return result;
}

method_result run_gordian(const netlist& nl) {
    method_result result;
    phase_capture phases;
    stopwatch sw;
    const placement global = gordian_place(nl);
    placement legal;
    legalize(nl, global, legal);
    result.seconds = sw.elapsed_seconds();
    result.hpwl = total_hpwl(nl, legal);
    phases.finish(result);
    result.ok = true;
    return result;
}

method_result run_annealer(const netlist& nl) {
    method_result result;
    phase_capture phases;
    stopwatch sw;
    annealer_options opt;
    opt.moves_per_cell = env_size("GPF_ANNEAL_MPC", 6);
    // Random-ish but reproducible start: spread cells over the region with
    // the same seed machinery as the generator.
    prng rng(suite_seed() ^ 0xabcdef);
    placement start = nl.initial_placement();
    const rect region = nl.region();
    for (cell_id i = 0; i < nl.num_cells(); ++i) {
        if (nl.cell_at(i).fixed) continue;
        start[i] = point(rng.next_range(region.xlo, region.xhi),
                         rng.next_range(region.ylo, region.yhi));
    }
    const placement annealed = anneal_place(nl, start, opt);
    placement legal;
    legalize(nl, annealed, legal);
    result.seconds = sw.elapsed_seconds();
    result.hpwl = total_hpwl(nl, legal);
    phases.finish(result);
    result.ok = true;
    return result;
}

timing_config scaled_timing_config() {
    timing_config cfg;
    cfg.unit_meters = 20e-6 / std::sqrt(suite_scale());
    return cfg;
}

phase_capture::phase_capture() {
    const profiler& prof = profiler::instance();
    for (std::size_t i = 0; i < num_profile_phases; ++i) {
        start_seconds_[i] = prof.total_seconds(static_cast<profile_phase>(i));
    }
    for (std::size_t i = 0; i < num_profile_kernels; ++i) {
        kernel_start_seconds_[i] =
            prof.kernel_seconds(static_cast<profile_kernel>(i));
    }
}

void phase_capture::finish(method_result& result) const {
    const profiler& prof = profiler::instance();
    for (std::size_t i = 0; i < num_profile_phases; ++i) {
        result.phase_ms[i] =
            (prof.total_seconds(static_cast<profile_phase>(i)) - start_seconds_[i]) *
            1e3;
    }
    for (std::size_t i = 0; i < num_profile_kernels; ++i) {
        result.kernel_ms[i] = (prof.kernel_seconds(static_cast<profile_kernel>(i)) -
                               kernel_start_seconds_[i]) *
                              1e3;
    }
}

namespace {

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default: out += c;
        }
    }
    return out;
}

std::string json_number(double v) {
    if (!std::isfinite(v)) return "null";
    std::ostringstream os;
    os.precision(12);
    os << v;
    return os.str();
}

} // namespace

json_report::json_report(std::string name) : name_(std::move(name)) {}

json_report::~json_report() {
    if (!written_) {
        try {
            write();
        } catch (...) {
            // Destructor must not throw; the bench already printed its
            // human-readable results.
        }
    }
}

void json_report::add(const std::string& circuit, const std::string& method,
                      const method_result& result) {
    records_.push_back({circuit, method, result});
}

void json_report::set_metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
}

std::string json_report::write() {
    written_ = true;
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "json_report: cannot write %s\n", path.c_str());
        return path;
    }
    out << "{\n  \"bench\": \"" << json_escape(name_) << "\",\n"
        << "  \"suite_scale\": " << json_number(suite_scale()) << ",\n"
        << "  \"seed\": " << suite_seed() << ",\n"
        << "  \"metrics\": {";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
        if (i > 0) out << ", ";
        out << '"' << json_escape(metrics_[i].first)
            << "\": " << json_number(metrics_[i].second);
    }
    out << "},\n  \"results\": [";
    for (std::size_t i = 0; i < records_.size(); ++i) {
        const record& r = records_[i];
        // A run that never completed (ok=false) or that completed through
        // the recovery ladder (degraded) must not serialize misleading
        // zeros: the flags are always explicit and a dead run's metrics
        // are null, so downstream gating can tell "fast" from "absent".
        const bool dead = !r.result.ok;
        out << (i > 0 ? ",\n    " : "\n    ") << "{\"circuit\": \""
            << json_escape(r.circuit) << "\", \"method\": \""
            << json_escape(r.method) << "\", \"ok\": "
            << (r.result.ok ? "true" : "false") << ", \"degraded\": "
            << (r.result.degraded ? "true" : "false")
            << ", \"hpwl\": " << (dead ? "null" : json_number(r.result.hpwl))
            << ", \"seconds\": " << (dead ? "null" : json_number(r.result.seconds))
            << ", \"iterations\": " << r.result.iterations << ", \"phase_ms\": {";
        bool first = true;
        for (std::size_t ph = 0; ph < num_profile_phases; ++ph) {
            if (r.result.phase_ms[ph] <= 0.0) continue;
            if (!first) out << ", ";
            first = false;
            out << '"' << profile_phase_name(static_cast<profile_phase>(ph))
                << "\": " << json_number(r.result.phase_ms[ph]);
        }
        // Kernel sub-phases share the map; the name sets are disjoint.
        for (std::size_t k = 0; k < num_profile_kernels; ++k) {
            if (r.result.kernel_ms[k] <= 0.0) continue;
            if (!first) out << ", ";
            first = false;
            out << '"' << profile_kernel_name(static_cast<profile_kernel>(k))
                << "\": " << json_number(r.result.kernel_ms[k]);
        }
        out << "}}";
    }
    out << "\n  ]\n}\n";
    std::printf("wrote %s\n", path.c_str());
    return path;
}

double geometric_mean(const std::vector<double>& values) {
    if (values.empty()) return 0.0;
    double acc = 0.0;
    for (const double v : values) acc += std::log(v);
    return std::exp(acc / static_cast<double>(values.size()));
}

double arithmetic_mean(const std::vector<double>& values) {
    if (values.empty()) return 0.0;
    double acc = 0.0;
    for (const double v : values) acc += v;
    return acc / static_cast<double>(values.size());
}

void print_preamble(const std::string& experiment, const std::string& paper_claim) {
    // Collection-only profiling (no trace lines) so every bench can report
    // per-phase wall clock in its BENCH_*.json; placements are unaffected.
    profiler::instance().set_enabled(true);
    std::printf("==============================================================\n");
    std::printf("%s\n", experiment.c_str());
    std::printf("paper reference: %s\n", paper_claim.c_str());
    std::printf("suite scale %.2f, seed %llu (set GPF_SCALE / GPF_SEED to change)\n",
                suite_scale(), static_cast<unsigned long long>(suite_seed()));
    std::printf("Note: circuits are synthetic stand-ins matching the published\n"
                "MCNC statistics (DESIGN.md par.4); absolute wire length is not\n"
                "comparable to the paper, relative comparisons are.\n");
    std::printf("==============================================================\n");
}

} // namespace gpf::bench
