// Detailed-placement refinement on a legal placement (the role Domino
// [17] plays for Gordian in the paper's flow; see DESIGN.md §4 for the
// substitution). Two greedy move types, applied in sweeps until no
// improvement:
//   * swap two cells that are horizontal neighbors in the same row
//     (re-packed so legality is preserved even for unequal widths), and
//   * relocate a cell into a free gap within a search window.
// Every accepted move strictly decreases total HPWL.
#pragma once

#include "netlist/netlist.hpp"

namespace gpf {

struct refine_options {
    std::size_t max_passes = 4;
    std::size_t window_rows = 2;     ///< rows above/below scanned for relocation
    double window_width = 16.0;      ///< x half-window (in row heights) for relocation
    bool enable_swaps = true;
    bool enable_relocation = true;
};

struct refine_result {
    double hpwl_before = 0.0;
    double hpwl_after = 0.0;
    std::size_t swaps = 0;
    std::size_t relocations = 0;
    std::size_t passes = 0;
};

/// Improve a legal placement in place. Returns statistics. The input must
/// be row-legal (e.g. from tetris_legalize or abacus_legalize).
refine_result refine_detailed(const netlist& nl, placement& pl,
                              const refine_options& options = {});

} // namespace gpf
