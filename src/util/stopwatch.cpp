#include "util/stopwatch.hpp"

namespace gpf {

void stopwatch::reset() { start_ = std::chrono::steady_clock::now(); }

double stopwatch::elapsed_seconds() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
}

} // namespace gpf
