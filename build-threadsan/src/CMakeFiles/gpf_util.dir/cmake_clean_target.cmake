file(REMOVE_RECURSE
  "libgpf_util.a"
)
