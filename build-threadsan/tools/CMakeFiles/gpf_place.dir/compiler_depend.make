# Empty compiler generated dependencies file for gpf_place.
# This may be replaced when dependencies are built.
