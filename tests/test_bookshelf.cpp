#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "netlist/bookshelf.hpp"
#include "netlist/generator.hpp"
#include "netlist/stats.hpp"

namespace gpf {
namespace {

class BookshelfTest : public ::testing::Test {
protected:
    void SetUp() override {
        base_ = (std::filesystem::temp_directory_path() / "gpf_bookshelf_test").string();
    }
    void TearDown() override {
        for (const char* ext : {".nodes", ".nets", ".pl", ".scl"}) {
            std::filesystem::remove(base_ + ext);
        }
    }
    std::string base_;
};

TEST_F(BookshelfTest, RoundTripPreservesStructure) {
    generator_options opt;
    opt.num_cells = 120;
    opt.num_nets = 130;
    opt.num_rows = 6;
    opt.num_pads = 16;
    const netlist nl = generate_circuit(opt);
    const placement pl = nl.centered_placement();

    write_bookshelf(nl, pl, base_);
    const bookshelf_design design = read_bookshelf(base_);

    EXPECT_EQ(design.nl.num_cells(), nl.num_cells());
    EXPECT_EQ(design.nl.num_nets(), nl.num_nets());
    EXPECT_EQ(design.nl.num_pins(), nl.num_pins());
    EXPECT_EQ(design.nl.num_fixed(), nl.num_fixed());
    EXPECT_EQ(design.nl.num_rows(), nl.num_rows());
    EXPECT_NO_THROW(design.nl.validate());
}

TEST_F(BookshelfTest, RoundTripPreservesPositionsAndDimensions) {
    generator_options opt;
    opt.num_cells = 40;
    opt.num_nets = 45;
    opt.num_rows = 4;
    opt.num_pads = 8;
    const netlist nl = generate_circuit(opt);
    placement pl = nl.centered_placement();
    pl[0] = point(3.25, 1.5);

    write_bookshelf(nl, pl, base_);
    const bookshelf_design design = read_bookshelf(base_);

    for (cell_id i = 0; i < nl.num_cells(); ++i) {
        EXPECT_NEAR(design.nl.cell_at(i).width, nl.cell_at(i).width, 1e-6);
        EXPECT_NEAR(design.nl.cell_at(i).height, nl.cell_at(i).height, 1e-6);
        EXPECT_NEAR(design.pl[i].x, pl[i].x, 1e-6) << i;
        EXPECT_NEAR(design.pl[i].y, pl[i].y, 1e-6) << i;
    }
}

TEST_F(BookshelfTest, RoundTripPreservesDriversAndOffsets) {
    generator_options opt;
    opt.num_cells = 50;
    opt.num_nets = 60;
    opt.num_rows = 4;
    opt.num_pads = 8;
    const netlist nl = generate_circuit(opt);
    write_bookshelf(nl, nl.centered_placement(), base_);
    const bookshelf_design design = read_bookshelf(base_);

    ASSERT_EQ(design.nl.num_nets(), nl.num_nets());
    for (net_id i = 0; i < nl.num_nets(); ++i) {
        const net& a = nl.net_at(i);
        const net& b = design.nl.net_at(i);
        ASSERT_EQ(a.degree(), b.degree());
        EXPECT_EQ(a.driver, b.driver);
        for (std::size_t k = 0; k < a.pins.size(); ++k) {
            EXPECT_NEAR(a.pins[k].offset.x, b.pins[k].offset.x, 1e-6);
            EXPECT_NEAR(a.pins[k].offset.y, b.pins[k].offset.y, 1e-6);
        }
    }
}

TEST_F(BookshelfTest, ReaderToleratesCommentsAndBlankLines) {
    {
        std::ofstream nodes(base_ + ".nodes");
        nodes << "UCLA nodes 1.0\n# a comment\n\nNumNodes : 2\nNumTerminals : 1\n"
              << "  a 2 1\n  p 1 1 terminal\n";
        std::ofstream nets(base_ + ".nets");
        nets << "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\n"
             << "NetDegree : 2  n0\n  a O : 0 0\n  p I : 0 0\n";
        std::ofstream pl(base_ + ".pl");
        pl << "UCLA pl 1.0\n# positions\na 1.0 2.0 : N\np 0 0 : N /FIXED\n";
    }
    const bookshelf_design design = read_bookshelf(base_);
    EXPECT_EQ(design.nl.num_cells(), 2u);
    EXPECT_EQ(design.nl.num_nets(), 1u);
    EXPECT_TRUE(design.nl.cell_at(1).fixed);
    EXPECT_EQ(design.nl.net_at(0).driver, 0u);
    // Bookshelf stores the lower-left corner; center = corner + w/2.
    EXPECT_NEAR(design.pl[0].x, 2.0, 1e-9);
    EXPECT_NEAR(design.pl[0].y, 2.5, 1e-9);
}

TEST_F(BookshelfTest, MissingFileThrowsIoError) {
    EXPECT_THROW(read_bookshelf(base_ + "_nonexistent"), io_error);
}

TEST_F(BookshelfTest, TallMovableNodesBecomeBlocks) {
    {
        std::ofstream nodes(base_ + ".nodes");
        nodes << "UCLA nodes 1.0\nNumNodes : 2\nNumTerminals : 0\n"
              << "  a 2 1\n  macro 8 6\n";
        std::ofstream nets(base_ + ".nets");
        nets << "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\n"
             << "NetDegree : 2 n\n  a O : 0 0\n  macro I : 0 0\n";
        std::ofstream pl(base_ + ".pl");
        pl << "UCLA pl 1.0\na 0 0 : N\nmacro 3 0 : N\n";
    }
    const bookshelf_design design = read_bookshelf(base_);
    EXPECT_EQ(design.nl.cell_at(0).kind, cell_kind::standard);
    EXPECT_EQ(design.nl.cell_at(1).kind, cell_kind::block);
}

} // namespace
} // namespace gpf
