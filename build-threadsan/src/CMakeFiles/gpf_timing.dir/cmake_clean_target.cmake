file(REMOVE_RECURSE
  "libgpf_timing.a"
)
