#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace gpf {

namespace {

std::atomic<log_level> g_level{log_level::warning};
std::mutex g_sink_mutex;
std::function<void(log_level, const std::string&)> g_sink;

const char* level_name(log_level level) {
    switch (level) {
        case log_level::debug: return "DEBUG";
        case log_level::info: return "INFO";
        case log_level::warning: return "WARN";
        case log_level::error: return "ERROR";
        case log_level::off: return "OFF";
    }
    return "?";
}

} // namespace

void set_log_level(log_level level) { g_level.store(level); }

log_level get_log_level() { return g_level.load(); }

void set_log_sink(std::function<void(log_level, const std::string&)> sink) {
    std::lock_guard<std::mutex> lock(g_sink_mutex);
    g_sink = std::move(sink);
}

namespace detail {

void log_emit(log_level level, const std::string& message) {
    if (level < g_level.load()) return;
    std::lock_guard<std::mutex> lock(g_sink_mutex);
    if (g_sink) {
        g_sink(level, message);
    } else {
        std::fprintf(stderr, "[gpf %s] %s\n", level_name(level), message.c_str());
    }
}

} // namespace detail

} // namespace gpf
